package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/dataset"
	"hcrowd/internal/journal"
	"hcrowd/internal/pipeline"
)

// driveFlipN answers rounds with the flip policy until n answer sets
// have been delivered (or the session finishes), then returns — the
// "crash point" driver: it leaves the session mid-round whenever n does
// not align with a panel boundary.
func driveFlipN(s *Session, ds *dataset.Dataset, n int) (int, error) {
	answered := 0
	deadline := time.After(20 * time.Second)
	for answered < n {
		select {
		case <-s.finished:
			return answered, nil
		case <-deadline:
			return answered, fmt.Errorf("session stalled after %d answers", answered)
		default:
		}
		progressed := false
		for _, id := range s.Experts() {
			round, facts, ok := s.Queries(id)
			if !ok {
				continue
			}
			if err := s.Answer(round, id, flipAnswers(ds, id, facts)); err != nil {
				return answered, err
			}
			answered++
			progressed = true
			if answered >= n {
				return answered, nil
			}
		}
		if !progressed {
			time.Sleep(time.Millisecond)
		}
	}
	return answered, nil
}

// checkpointBytes serializes a checkpoint for byte comparison.
func checkpointBytes(t *testing.T, ck *pipeline.Checkpoint) []byte {
	t.Helper()
	if ck == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// recoverRoundTrip is the kill-and-recover scenario shared by both
// engine flavors: run the job uninterrupted as the reference, run the
// same job journaled and kill it after crashAt accepted answers (no
// drain, no checkpoint file — only the journal survives), recover in a
// fresh manager, finish the job, and demand byte-identical labels and a
// byte-identical final checkpoint.
func recoverRoundTrip(t *testing.T, costAware bool, crashAt int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	ds := sizedDataset(t, 8, 57)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	sc := SessionConfig{K: 1, Budget: 14, Seed: 5}
	if costAware {
		sc.CostAware = true
		sc.CostModel = "accuracy"
	}

	// Reference: the identical job, uninterrupted and unjournaled.
	agg, err := aggregate.ByName("EBCC", sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	couple, err := ds.EstimateCoupling()
	if err != nil {
		t.Fatal(err)
	}
	cost, err := CostModelByName(sc.CostModel)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := pipeline.Config{K: sc.K, Budget: sc.Budget, Init: agg, PriorCoupling: couple, Cost: cost}
	ref, err := NewSessionOpts(ctx, ds, refCfg, SessionOptions{CostAware: costAware})
	if err != nil {
		t.Fatal(err)
	}
	if err := driveFlip(ref, ds); err != nil {
		t.Fatalf("reference: %v", err)
	}
	refRes, err := ref.Wait(ctx)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	refCk := checkpointBytes(t, ref.Checkpoint())
	ref.Close()

	// Journaled run, killed after crashAt answers. CompactEvery 3
	// exercises recovery both from a compacted prefix and from a replay
	// suffix. Close without Drain is the in-process stand-in for SIGKILL:
	// nothing is flushed beyond what each acknowledgement already fsynced.
	dir := t.TempDir()
	m1 := NewManager(ManagerOptions{JournalDir: dir, CompactEvery: 3})
	id, s1, err := m1.CreateFromRequest(CreateSessionRequest{
		Name: "job", Dataset: dsBuf.Bytes(), Config: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := driveFlipN(s1, ds, crashAt); err != nil {
		t.Fatalf("pre-crash drive: %v", err)
	}
	s1.Close()

	// Restart: a fresh manager over the same journal dir.
	m2 := NewManager(ManagerOptions{JournalDir: dir, CompactEvery: 3})
	ids, err := m2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("recovered %v, want [%s]", ids, id)
	}
	s2, ok := m2.Get(id)
	if !ok {
		t.Fatal("recovered session not registered")
	}
	if err := driveFlip(s2, ds); err != nil {
		t.Fatalf("post-recovery drive: %v", err)
	}
	res, err := s2.Wait(ctx)
	if err != nil {
		t.Fatalf("recovered run: %v", err)
	}

	gotLabels, _ := json.Marshal(res.Labels)
	wantLabels, _ := json.Marshal(refRes.Labels)
	if !bytes.Equal(gotLabels, wantLabels) {
		t.Errorf("recovered labels diverge from uninterrupted run\n got %s\nwant %s", gotLabels, wantLabels)
	}
	if res.BudgetSpent != refRes.BudgetSpent {
		t.Errorf("recovered spend %v, uninterrupted %v", res.BudgetSpent, refRes.BudgetSpent)
	}
	if res.Quality != refRes.Quality {
		t.Errorf("recovered quality %v, uninterrupted %v", res.Quality, refRes.Quality)
	}
	if gotCk := checkpointBytes(t, s2.Checkpoint()); !bytes.Equal(gotCk, refCk) {
		t.Errorf("recovered final checkpoint diverges from uninterrupted run\n got %s\nwant %s", gotCk, refCk)
	}
	// The watcher classifies the terminal state asynchronously after the
	// engine returns; give it a moment.
	stateDeadline := time.After(5 * time.Second)
	for {
		st, _ := m2.Info(id)
		if st.State == StateDone {
			break
		}
		select {
		case <-stateDeadline:
			t.Errorf("recovered session ended %s, want done", st.State)
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestRecoverUniformDeterministicGivenSeed proves the tentpole claim for
// the uniform loop: kill the service mid-round (here: past a round
// boundary and into the next panel), recover from the journal alone,
// and the finished job is byte-identical — labels and final checkpoint —
// to a run that was never interrupted. Runs in the -count=2 determinism
// suite.
func TestRecoverUniformDeterministicGivenSeed(t *testing.T) {
	// crashAt 7 lands mid-panel for every SentiLike expert-set size > 1,
	// so the journal ends in an open round with partial answers.
	recoverRoundTrip(t, false, 7)
}

// TestRecoverCostAwareDeterministicGivenSeed is the same proof for the
// cost-aware loop (accuracy-priced answers, per-round greedy panels).
func TestRecoverCostAwareDeterministicGivenSeed(t *testing.T) {
	recoverRoundTrip(t, true, 7)
}

// TestRecoverDoneSessionDeterministicGivenSeed pins the restart of a
// finished session: its journal ends at the final checkpoint, recovery
// rebuilds it, the engine immediately concludes, and the labels match
// the original run. A completed job surviving restarts is what lets
// clients fetch labels after a crash that happened post-completion.
func TestRecoverDoneSessionDeterministicGivenSeed(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ds := sizedDataset(t, 6, 58)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m1 := NewManager(ManagerOptions{JournalDir: dir})
	id, s1, err := m1.CreateFromRequest(CreateSessionRequest{
		Name: "done-job", Dataset: dsBuf.Bytes(), Config: SessionConfig{K: 1, Budget: 10, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := driveFlip(s1, ds); err != nil {
		t.Fatal(err)
	}
	res1, err := s1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	m2 := NewManager(ManagerOptions{JournalDir: dir})
	ids, err := m2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("recovered %v, want [%s]", ids, id)
	}
	s2, _ := m2.Get(id)
	if err := driveFlip(s2, ds); err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Wait(ctx)
	if err != nil {
		t.Fatalf("recovered run: %v", err)
	}
	got, _ := json.Marshal(res2.Labels)
	want, _ := json.Marshal(res1.Labels)
	if !bytes.Equal(got, want) {
		t.Errorf("labels after restart diverge\n got %s\nwant %s", got, want)
	}
}

// testCreatedPayload builds a valid journal creation record for a tiny
// job, returning the payload and the dataset it embeds.
func testCreatedPayload(t *testing.T, name string) ([]byte, *dataset.Dataset) {
	t.Helper()
	ds := sizedDataset(t, 4, 59)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	req := CreateSessionRequest{
		Name:    name,
		Dataset: dsBuf.Bytes(),
		Config:  SessionConfig{K: 1, Budget: 6, Seed: 2},
	}
	payload, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	return payload, ds
}

// writeJournalRecords hand-builds a journal file from records.
func writeJournalRecords(t *testing.T, path string, recs []journal.Record) {
	t.Helper()
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverUnknownRecordTypeFailsLoudly pins the version-skew
// contract: a journal containing a record type this build does not know
// (a newer format, a corrupted stream) must fail recovery with an error
// naming the file — never skip the record and run the session on a
// partial history.
func TestRecoverUnknownRecordTypeFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	created, _ := testCreatedPayload(t, "skewed")
	path := filepath.Join(dir, "skewed.journal")
	writeJournalRecords(t, path, []journal.Record{
		{Type: recCreated, Payload: created},
		{Type: 99, Payload: []byte(`{}`)},
	})
	m := NewManager(ManagerOptions{JournalDir: dir})
	_, err := m.Recover()
	if err == nil {
		t.Fatal("recovery accepted a journal with an unknown record type")
	}
	if !strings.Contains(err.Error(), "unknown journal record type 99") {
		t.Errorf("error %q does not name the unknown type", err)
	}
	if !strings.Contains(err.Error(), "skewed.journal") {
		t.Errorf("error %q does not name the journal file", err)
	}
}

// TestRecoverV0CheckpointColdResume pins backward compatibility: a
// journaled checkpoint in the version-0 format (beliefs + spend only,
// no warm sections) recovers cold — the session rebuilds, resumes from
// those beliefs, and runs to completion.
func TestRecoverV0CheckpointColdResume(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	created, ds := testCreatedPayload(t, "v0job")

	// Produce a genuine checkpoint for this dataset, then strip it down
	// to the v0 field set.
	agg, err := aggregate.ByName("EBCC", 2)
	if err != nil {
		t.Fatal(err)
	}
	couple, err := ds.EstimateCoupling()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSession(ctx, ds, pipeline.Config{K: 1, Budget: 3, Init: agg, PriorCoupling: couple})
	if err != nil {
		t.Fatal(err)
	}
	if err := driveFlip(ref, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	full := checkpointBytes(t, ref.Checkpoint())
	ref.Close()
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(full, &doc); err != nil {
		t.Fatal(err)
	}
	delete(doc, "version")
	delete(doc, "selection_cache")
	delete(doc, "stop_votes")
	v0, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	ckPayload, err := json.Marshal(checkpointRec{NextRound: 3, Checkpoint: v0})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	writeJournalRecords(t, filepath.Join(dir, "v0job.journal"), []journal.Record{
		{Type: recCreated, Payload: created},
		{Type: recCheckpoint, Payload: ckPayload},
	})
	m := NewManager(ManagerOptions{JournalDir: dir})
	ids, err := m.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(ids) != 1 || ids[0] != "v0job" {
		t.Fatalf("recovered %v, want [v0job]", ids)
	}
	s, _ := m.Get("v0job")
	if err := driveFlip(s, ds); err != nil {
		t.Fatal(err)
	}
	res, err := s.Wait(ctx)
	if err != nil {
		t.Fatalf("v0-resumed run: %v", err)
	}
	if len(res.Labels) != ds.NumFacts() {
		t.Errorf("v0-resumed run produced %d labels for %d facts", len(res.Labels), ds.NumFacts())
	}
	if res.BudgetSpent <= 3 {
		t.Errorf("v0-resumed run spent %v, want > the checkpointed 3", res.BudgetSpent)
	}
}

// TestCancelRetiresJournal pins the deletion semantics: an explicit
// DELETE discards the job, so its journal must not resurrect the
// session at the next restart — while a plain kill (Close) keeps it.
func TestCancelRetiresJournal(t *testing.T) {
	ds := sizedDataset(t, 5, 60)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m := NewManager(ManagerOptions{JournalDir: dir})
	id, s, err := m.CreateFromRequest(CreateSessionRequest{
		Name: "doomed", Dataset: dsBuf.Bytes(), Config: SessionConfig{K: 1, Budget: 50, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id+".journal")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal not created: %v", err)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	<-s.finished
	deadline := time.After(5 * time.Second)
	for {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("cancelled session's journal was not retired")
		case <-time.After(5 * time.Millisecond):
		}
	}
	m2 := NewManager(ManagerOptions{JournalDir: dir})
	ids, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("cancelled session resurrected: %v", ids)
	}
}

// TestRecoverEmptyJournalDiscarded pins the never-acknowledged case: a
// journal holding no records (the create crashed before its first
// fsync returned) promised nothing and is silently discarded.
func TestRecoverEmptyJournalDiscarded(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Create(filepath.Join(dir, "ghost.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	m := NewManager(ManagerOptions{JournalDir: dir})
	ids, err := m.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(ids) != 0 {
		t.Errorf("recovered %v from an empty journal", ids)
	}
	if _, err := os.Stat(filepath.Join(dir, "ghost.journal")); !os.IsNotExist(err) {
		t.Error("empty journal not removed")
	}
}
