package server

import (
	"bytes"
	"context"
	"errors"
	"log"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hcrowd/internal/dataset"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
)

// waitForRound polls until the session publishes a round to the expert.
func waitForRound(t *testing.T, s *Session, expert string) (int, []int) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if round, facts, ok := s.Queries(expert); ok {
			return round, facts
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no round published")
	return 0, nil
}

// TestStragglerAfterRoundCompleteRejected is the acceptance-criterion
// regression test for the straggler race: an answer posted after the
// round completes (here: after the timeout fires with a partial panel)
// must be rejected with ErrRoundClosed and must never change the family
// the pipeline consumes. The expiry is simulated deterministically —
// complete is set exactly as expireRound does at the deadline, but the
// done channel is held closed-pending so the engine stays parked and the
// straggler provably races only against the completed round, not against
// the loop consuming it.
func TestStragglerAfterRoundCompleteRejected(t *testing.T) {
	ds := testDataset(t)
	// Two experts, K=1, Budget=2: one pick costs |CE|=2, so if the round
	// closes with only one answer (spend 1), the remaining 1 cannot fund
	// another pick and the run ends — making the consumed family directly
	// observable in BudgetSpent.
	s, err := NewSessionOpts(context.Background(), ds,
		pipeline.Config{K: 1, Budget: 2}, SessionOptions{RoundTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	experts := s.Experts()
	if len(experts) != 2 {
		t.Fatalf("experts = %v, want 2", experts)
	}
	prompt, straggler := experts[0], experts[1]

	round, facts := waitForRound(t, s, prompt)
	values := make([]bool, len(facts))
	for i, f := range facts {
		values[i] = ds.Truth[f]
	}
	if err := s.Answer(round, prompt, values); err != nil {
		t.Fatal(err)
	}

	// The deadline passes: the round completes with the partial panel.
	s.mu.Lock()
	p := s.pending
	if p == nil || p.id != round {
		s.mu.Unlock()
		t.Fatalf("pending round changed underneath the test")
	}
	p.complete = true
	s.mu.Unlock()

	// Satellite fix 2: a completed round is no longer advertised.
	if _, _, ok := s.Queries(straggler); ok {
		t.Error("completed round still advertised to the unanswered expert")
	}

	// Satellite fix 1: the straggler's answer is rejected, not folded in.
	err = s.Answer(round, straggler, values)
	if !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("straggler answer: err = %v, want ErrRoundClosed", err)
	}
	s.mu.Lock()
	if len(p.answers) != 1 {
		s.mu.Unlock()
		t.Fatalf("straggler answer mutated the family: %d answers", len(p.answers))
	}
	if got := s.metrics.answersRejected.With("round_closed").Value(); got != 1 {
		s.mu.Unlock()
		t.Fatalf("round_closed rejections = %v, want 1", got)
	}
	// Release the engine; it must consume exactly the one-answer family.
	close(p.done)
	s.mu.Unlock()

	res, err := s.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetSpent != 1 {
		t.Errorf("budget spent %v, want 1 (one answer, straggler excluded)", res.BudgetSpent)
	}
}

// TestAnswerLoopSurvivesRoundConflict pins the client-side fix: when the
// round completes between Queries and Answer (here: the timeout fires
// while the slow expert is still thinking), the resulting 409 must not
// abort AnswerLoop — the loop re-polls and the session still finishes.
func TestAnswerLoopSurvivesRoundConflict(t *testing.T) {
	ds := testDataset(t)
	logBuf := &syncBuffer{}
	s, err := NewSessionOpts(context.Background(), ds,
		pipeline.Config{K: 1, Budget: 8},
		SessionOptions{RoundTimeout: 25 * time.Millisecond, Logger: log.New(logBuf, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	experts := s.Experts()
	fast, slow := experts[0], experts[1]

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	c := NewClient(srv.URL)
	truthValues := func(facts []int) []bool {
		values := make([]bool, len(facts))
		for i, f := range facts {
			values[i] = ds.Truth[f]
		}
		return values
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() { // answers immediately, so every round expires ~25ms later
		defer wg.Done()
		errs <- c.AnswerLoop(ctx, fast, truthValues, time.Millisecond)
	}()
	go func() { // thinks 4× longer than the round timeout: always stale
		defer wg.Done()
		errs <- c.AnswerLoop(ctx, slow, func(facts []int) []bool {
			time.Sleep(100 * time.Millisecond)
			return truthValues(facts)
		}, time.Millisecond)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("AnswerLoop died on the benign conflict: %v", err)
		}
	}
	if st := s.Status(); !st.Done {
		t.Fatalf("session not done: %+v", st)
	}
	// The slow expert's posts really were rejected — the loops survived
	// actual conflicts, not an uncontested run.
	m := s.Metrics()
	rejected := m.answersRejected.With("round_closed").Value() +
		m.answersRejected.With("not_open").Value()
	if rejected == 0 {
		t.Error("no stale answers rejected; the conflict never happened")
	}
	if m.roundsExpired.Value() == 0 {
		t.Error("no rounds expired; the timeout never fired")
	}
	if !strings.Contains(logBuf.String(), "expired") {
		t.Error("round expiry not logged")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for cross-goroutine logs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAnswerLoopBackoffGivesUp checks the transport-error path: against a
// dead server the loop retries with backoff and then surfaces the error
// instead of spinning forever.
func TestAnswerLoopBackoffGivesUp(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens there
	c.RetryBaseDelay = time.Millisecond
	c.RetryMaxDelay = 4 * time.Millisecond
	c.MaxRetries = 3
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	err := c.AnswerLoop(ctx, "e0", func([]int) []bool { return nil }, time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "giving up after") {
		t.Fatalf("err = %v, want giving-up error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("retry loop took %v; backoff not capped?", elapsed)
	}
}

// TestBackoffDelayCappedWithJitter pins the delay schedule's envelope.
func TestBackoffDelayCappedWithJitter(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	jitter := rand.New(rand.NewSource(1))
	for n := 1; n <= 64; n++ {
		d := backoffDelay(jitter, base, max, n)
		if d <= 0 || d > time.Duration(1.25*float64(max)) {
			t.Fatalf("attempt %d: delay %v outside (0, 1.25·max]", n, d)
		}
	}
	if d := backoffDelay(jitter, base, max, 1); d > time.Duration(1.25*float64(base)) {
		t.Errorf("first attempt delay %v exceeds jittered base", d)
	}
}

// TestConcurrentManyExpertSession runs a six-expert crowd through the
// full HTTP stack with every expert on its own AnswerLoop goroutine —
// the -race exercise for the round lifecycle under real contention.
func TestConcurrentManyExpertSession(t *testing.T) {
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = 6
	cfg.Crowd.NumExpert = 6
	ds, err := dataset.SentiLike(rngutil.New(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(context.Background(), ds, pipeline.Config{K: 2, Budget: 36})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	experts := s.Experts()
	if len(experts) != 6 {
		t.Fatalf("experts = %d, want 6", len(experts))
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(experts))
	for _, id := range experts {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			errs <- c.AnswerLoop(ctx, id, func(facts []int) []bool {
				values := make([]bool, len(facts))
				for i, f := range facts {
					values[i] = ds.Truth[f]
				}
				return values
			}, time.Millisecond)
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetSpent != 36 {
		t.Errorf("budget spent %v, want 36", res.BudgetSpent)
	}
	// Every published answer-collection round closed with the full panel
	// (no timeout configured). Published rounds are per purchase, so they
	// can outnumber pipeline rounds when K spans several tasks.
	m := s.Metrics()
	if pub, done := m.roundsPublished.Value(), m.roundsCompleted.Value(); pub == 0 || pub != done {
		t.Errorf("rounds published %v vs completed %v", pub, done)
	}
}
