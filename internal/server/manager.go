package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/journal"
	"hcrowd/internal/pipeline"
)

// ErrManagerDraining is returned when creating a session (or when a
// queued session's gate fires) after the manager began its graceful
// drain: the service is shutting down and admits no new work.
var ErrManagerDraining = errors.New("server: manager draining")

// ErrDuplicateSession is returned when creating a session under an ID
// that is already registered.
var ErrDuplicateSession = errors.New("server: duplicate session")

// ErrUnknownSession is returned when addressing a session ID the
// manager does not know (never created, or already evicted).
var ErrUnknownSession = errors.New("server: unknown session")

// ErrNotJournaled is returned when a cluster handoff addresses a
// session that has no write-ahead journal: without one there is no
// self-contained state image to stream to the new owner.
var ErrNotJournaled = errors.New("server: session has no journal")

// SessionState is a managed session's lifecycle phase.
//
//	queued    -> created, waiting for a concurrency slot
//	running   -> the pipeline engine is executing
//	done      -> the engine finished cleanly (labels available)
//	failed    -> the engine returned an error
//	cancelled -> the run was cancelled (DELETE, drain, or context)
type SessionState string

const (
	StateQueued    SessionState = "queued"
	StateRunning   SessionState = "running"
	StateDone      SessionState = "done"
	StateFailed    SessionState = "failed"
	StateCancelled SessionState = "cancelled"
)

// finished reports whether the state is terminal (eviction-eligible).
func (st SessionState) finished() bool {
	return st == StateDone || st == StateFailed || st == StateCancelled
}

// sessionIDPattern validates caller-chosen session names. The character
// set is deliberately filename- and URL-safe: IDs appear in route paths
// and in checkpoint filenames.
var sessionIDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// managedSession is the manager's per-session record.
type managedSession struct {
	id     string
	s      *Session
	routes http.Handler // the session's route set, rooted at "/"
	seq    int          // creation order (List order)

	// journal is the session's write-ahead log (nil for unjournaled
	// sessions); the watcher closes it when the engine finishes.
	journal *sessionJournal

	// Guarded by Manager.mu — a cross-struct guard, which is outside
	// //hclint:guardedby's sibling-field grammar, so these rely on
	// review plus -race rather than lock-discipline.
	state  SessionState
	finSeq int // finish order; eviction removes the oldest-finished first
	// retire marks the journal file for deletion once the session ends:
	// set by an explicit Cancel (the caller discarded the job). Drained
	// and failed sessions keep their journals so a restart resumes them.
	retire bool
	// pinned exempts the session from retention eviction: set for the
	// duration of a cluster handoff, where evicting (and retiring the
	// journal of) the session mid-transfer would destroy the only copy
	// of its state before the target replica acknowledged it.
	pinned bool
}

// ManagerOptions configures a session manager.
type ManagerOptions struct {
	// MaxRunning bounds the number of pipeline engines executing
	// simultaneously; sessions beyond it sit queued (publishing no
	// rounds) until a slot frees up. 0 means unbounded.
	MaxRunning int
	// Retention is how many finished sessions (done, failed or
	// cancelled) to keep for inspection; once exceeded, the
	// oldest-finished are evicted — their entry, routes and per-session
	// metric labels removed. 0 keeps every finished session forever.
	Retention int
	// CheckpointDir, when set, receives one final checkpoint per session
	// ("<id>.ckpt.json", written atomically) during Drain.
	CheckpointDir string
	// JournalDir, when set, makes request-created sessions durable: each
	// session appends its history ("<id>.journal", fsynced at every
	// acknowledgement) to a write-ahead log, and Recover rebuilds live
	// sessions from those logs after a crash or restart. Only sessions
	// created through CreateFromRequest (the HTTP create path) are
	// journaled — the creation payload is the recovery recipe.
	JournalDir string
	// CompactEvery folds a session's journal into its latest checkpoint
	// record after that many round commits, bounding log growth. 0 uses
	// the default (8); negative disables compaction.
	CompactEvery int
	// Logger receives manager and session lifecycle lines; nil silences
	// them.
	Logger *log.Logger
	// BaseContext is the context sessions run on — NOT the per-request
	// context, so an HTTP client disconnecting never kills a labeling
	// job. Defaults to context.Background(); shutdown goes through Drain.
	BaseContext context.Context
}

// Manager is a registry of concurrent labeling sessions behind one HTTP
// surface. It creates sessions from JSON payloads (POST /v1/sessions),
// bounds how many engines run at once, evicts old finished sessions,
// and drains everything to checkpoints on shutdown. The zero value is
// not usable; call NewManager.
type Manager struct {
	opts    ManagerOptions
	baseCtx context.Context
	metrics *ManagerMetrics
	logger  *log.Logger
	handler http.Handler

	// sem holds one token per running engine when MaxRunning > 0.
	sem chan struct{}
	// drainCh is closed when Drain begins so queued gates reject instead
	// of starting engines mid-shutdown.
	drainCh chan struct{}

	// handoffMu serializes AcceptHandoff's check-then-land sequence so
	// two concurrent transfers of the same session cannot both pass the
	// existence checks and rename over each other's journal.
	handoffMu sync.Mutex

	mu       sync.Mutex
	sessions map[string]*managedSession //hclint:guardedby mu
	// order is the creation-order registry walked by List and eviction.
	order    []*managedSession //hclint:guardedby mu
	nextSeq  int               //hclint:guardedby mu
	nextID   int               //hclint:guardedby mu
	finSeq   int               //hclint:guardedby mu
	draining bool              //hclint:guardedby mu
}

// NewManager builds a manager; see ManagerOptions for the knobs.
func NewManager(opts ManagerOptions) *Manager {
	m := &Manager{
		opts:     opts,
		baseCtx:  opts.BaseContext,
		metrics:  NewManagerMetrics(),
		logger:   opts.Logger,
		drainCh:  make(chan struct{}),
		sessions: make(map[string]*managedSession),
	}
	if m.baseCtx == nil {
		m.baseCtx = context.Background()
	}
	if opts.MaxRunning > 0 {
		m.sem = make(chan struct{}, opts.MaxRunning)
	}
	m.handler = m.buildHandler()
	return m
}

// Metrics returns the manager's instrument bundle: its own HTTP traffic
// (under manager_*), session-state gauges and the per-session labeled
// families. Per-session pipeline metrics land here via the sink each
// Create wires in.
func (m *Manager) Metrics() *ManagerMetrics { return m.metrics }

func (m *Manager) logf(format string, args ...any) {
	if m.logger != nil {
		m.logger.Printf(format, args...)
	}
}

// Create registers and starts a new session running on the manager's
// base context. id may be empty (one is generated); otherwise it must
// match [A-Za-z0-9._-]{1,64} and be unused. The session's engine starts
// only once the manager's concurrency gate admits it; until then it is
// queued and publishes no rounds. cfg.Source is replaced by the
// session's answer queue (as in NewSession); any cfg.Metrics sink still
// receives every round record, alongside the manager's per-session
// labeled families.
func (m *Manager) Create(id string, ds *dataset.Dataset, cfg pipeline.Config, opts SessionOptions) (string, *Session, error) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return "", nil, ErrManagerDraining
	}
	if id == "" {
		for {
			m.nextID++
			id = fmt.Sprintf("s%d", m.nextID)
			if _, taken := m.sessions[id]; !taken {
				break
			}
		}
	} else if !sessionIDPattern.MatchString(id) {
		m.mu.Unlock()
		return "", nil, fmt.Errorf("server: invalid session id %q (want %s)", id, sessionIDPattern)
	} else if _, taken := m.sessions[id]; taken {
		m.mu.Unlock()
		return "", nil, fmt.Errorf("%w: %q", ErrDuplicateSession, id)
	}
	m.mu.Unlock()

	if opts.Gate != nil {
		// Sessions the manager starts are gated by the manager alone.
		return "", nil, errors.New("server: SessionOptions.Gate is owned by the manager")
	}
	// Attach a fresh write-ahead journal when the manager is durable and
	// the session came in through the HTTP create path (journalReq is the
	// recovery recipe). Recovered sessions arrive with opts.journal
	// already set and skip this.
	var freshJournal *sessionJournal
	if m.opts.JournalDir != "" && opts.journal == nil && opts.journalReq != nil {
		if opts.Metrics == nil {
			opts.Metrics = NewMetrics()
		}
		j, err := m.newJournal(id, opts.journalReq, opts.Metrics.journal)
		if err != nil {
			return "", nil, fmt.Errorf("server: journal %s: %w", id, err)
		}
		opts.journal = j
		freshJournal = j
	}
	// A failed construction must not leave a fresh journal behind — the
	// create never succeeded, so there is nothing to recover.
	discardFresh := func() {
		if freshJournal == nil {
			return
		}
		if err := freshJournal.close(); err != nil {
			m.logf("manager: session %s journal close: %v", id, err)
		}
		if err := os.Remove(freshJournal.path()); err != nil {
			m.logf("manager: session %s journal remove: %v", id, err)
		}
	}

	ms := &managedSession{id: id, state: StateQueued, journal: opts.journal}
	if opts.Logger == nil {
		opts.Logger = m.logger
	}
	opts.Gate = m.gate(ms)
	sink := m.metrics.sessionSink(id)
	if cfg.Metrics != nil {
		cfg.Metrics = pipeline.MultiMetrics{sink, cfg.Metrics}
	} else {
		cfg.Metrics = sink
	}
	s, err := NewSessionOpts(m.baseCtx, ds, cfg, opts)
	if err != nil {
		discardFresh()
		m.metrics.forgetSession(id)
		return "", nil, err
	}
	ms.s = s
	if err := m.register(ms); err != nil {
		s.Close()
		discardFresh()
		m.metrics.forgetSession(id)
		return "", nil, err
	}
	m.logf("manager: session %s created (%d facts, budget %.0f)", id, ds.NumFacts(), cfg.Budget)
	return id, s, nil
}

// defaultCompactEvery is how many round commits a journal accumulates
// before folding into its latest checkpoint when CompactEvery is 0.
const defaultCompactEvery = 8

// compactEvery resolves the manager's compaction cadence.
func (m *Manager) compactEvery() int {
	switch {
	case m.opts.CompactEvery > 0:
		return m.opts.CompactEvery
	case m.opts.CompactEvery < 0:
		return 0 // disabled
	default:
		return defaultCompactEvery
	}
}

// newJournal creates a session's write-ahead log and commits the
// creation record — the ack point of the create — before the session is
// allowed to exist. req.Name is pinned to the resolved ID so recovery
// recreates the session under the same name (round IDs, routes, and
// checkpoint files all key on it).
func (m *Manager) newJournal(id string, req *CreateSessionRequest, ins *journalInstruments) (*sessionJournal, error) {
	if err := os.MkdirAll(m.opts.JournalDir, 0o755); err != nil {
		return nil, err
	}
	req.Name = id
	created, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(m.opts.JournalDir, id+".journal")
	w, err := journal.Create(path)
	if err != nil {
		return nil, err
	}
	j := newSessionJournal(w, created, m.compactEvery(), ins)
	if err := j.logCreated(); err != nil {
		if cerr := j.close(); cerr != nil {
			m.logf("manager: journal %s close: %v", id, cerr)
		}
		if rerr := os.Remove(path); rerr != nil {
			m.logf("manager: journal %s remove: %v", id, rerr)
		}
		return nil, err
	}
	return j, nil
}

// Recover scans JournalDir and rebuilds every journaled session: the
// creation record supplies the dataset and config, the newest journaled
// checkpoint warm-starts the engine, and the round suffix past it is
// replayed through the regular answer path — so a recovered session is
// indistinguishable from one that was never interrupted. Unreadable or
// structurally invalid journals fail recovery loudly (the error names
// the file) rather than silently dropping acknowledged answers; empty
// journals (created but never acknowledged) are discarded. Returns the
// recovered session IDs. Call before serving traffic and before
// creating any sessions, so recovered sessions reclaim their IDs.
func (m *Manager) Recover() ([]string, error) {
	if m.opts.JournalDir == "" {
		return nil, errors.New("server: recover: no JournalDir configured")
	}
	if err := os.MkdirAll(m.opts.JournalDir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(m.opts.JournalDir)
	if err != nil {
		return nil, err
	}
	var recovered []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".journal") {
			continue
		}
		path := filepath.Join(m.opts.JournalDir, e.Name())
		id, err := m.recoverOne(path)
		if err != nil {
			return recovered, fmt.Errorf("server: recover %s: %w", path, err)
		}
		if id != "" {
			recovered = append(recovered, id)
			m.metrics.sessionsRecovered.Inc()
			m.logf("manager: session %s recovered from %s", id, path)
		}
	}
	return recovered, nil
}

// recoverOne rebuilds one session from its journal; returns "" for an
// empty journal (discarded, nothing was ever acknowledged).
func (m *Manager) recoverOne(path string) (string, error) {
	w, recs, err := journal.Open(path)
	if err != nil {
		return "", err
	}
	if len(recs) == 0 {
		// The create this journal belonged to never returned success, so
		// no client was promised anything.
		if cerr := w.Close(); cerr != nil {
			return "", cerr
		}
		return "", os.Remove(path)
	}
	closeOnErr := func() {
		if cerr := w.Close(); cerr != nil {
			m.logf("manager: journal %s close: %v", path, cerr)
		}
	}
	state, err := parseJournal(recs)
	if err != nil {
		closeOnErr()
		return "", err
	}
	if state.req.Name == "" {
		closeOnErr()
		return "", errors.New("created record has no session name")
	}
	ds, cfg, opts, err := buildFromRequest(state.req)
	if err != nil {
		closeOnErr()
		return "", err
	}
	if state.base != nil {
		// The journaled checkpoint supersedes any checkpoint embedded in
		// the original create payload: it is strictly newer.
		opts.Checkpoint = state.base
	}
	if len(state.admits) > 0 && cfg.BudgetWindow <= 0 {
		closeOnErr()
		return "", errors.New("journal has task admissions but the creation config carries no budget window")
	}
	// Streaming sessions: admissions the checkpoint already folded are
	// re-applied to the dataset (the checkpoint's beliefs and selection
	// cache were taken over the grown dataset, and the engine resumes on
	// it); their budget-window refills — which admitAll granted in the
	// original run — are folded into the base budget. Admissions past the
	// checkpoint are re-staged for the engine's admission source, which
	// replays them at the exact round boundaries the journal recorded.
	folded := 0
	for _, ar := range state.admits {
		if ar.Fragment == nil || ar.Seq > state.baseAdmitSeq {
			continue
		}
		if _, _, err := ds.Admit(ar.Fragment); err != nil {
			closeOnErr()
			return "", fmt.Errorf("re-admit journaled fragment %d: %w", ar.Seq, err)
		}
		folded++
	}
	cfg.Budget += float64(folded) * cfg.BudgetWindow
	for _, ar := range state.admits {
		if ar.Fragment == nil {
			opts.admitFinal = true
			continue
		}
		opts.admitFrags++
		if ar.Seq > state.baseAdmitSeq {
			opts.pendingAdmits = append(opts.pendingAdmits, stagedAdmit{seq: ar.Seq, fr: ar.Fragment})
		}
		if ar.Final {
			opts.admitFinal = true
		}
	}
	opts.admitSeq = len(state.admits)
	opts.appliedSeq = state.baseAdmitSeq
	if opts.Metrics == nil {
		opts.Metrics = NewMetrics()
	}
	created := append([]byte(nil), recs[0].Payload...)
	opts.journal = newSessionJournal(w, created, m.compactEvery(), opts.Metrics.journal)
	opts.journal.seedAdmits(state.admitRaw)
	opts.replay = state.replay
	opts.nextRound = state.nextRound
	id, _, err := m.Create(state.req.Name, ds, cfg, opts)
	if err != nil {
		closeOnErr()
		return "", err
	}
	return id, nil
}

// Adopt registers an externally constructed, already-running session —
// the legacy single-session Handler is exactly a one-entry manager over
// an adopted session. The returned handler is the session's route set
// rooted at "/" (the same routes the manager serves under
// /v1/sessions/{id}/). Adopted sessions bypass the concurrency gate:
// their engine is already running.
func (m *Manager) Adopt(id string, s *Session) (http.Handler, error) {
	if !sessionIDPattern.MatchString(id) {
		return nil, fmt.Errorf("server: invalid session id %q (want %s)", id, sessionIDPattern)
	}
	ms := &managedSession{id: id, s: s, state: StateRunning}
	if err := m.register(ms); err != nil {
		return nil, err
	}
	return ms.routes, nil
}

// register installs the record, builds its route set and starts the
// watcher that classifies the terminal state.
func (m *Manager) register(ms *managedSession) error {
	ms.routes = sessionRoutes(ms.s, m.logger)
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return ErrManagerDraining
	}
	if _, taken := m.sessions[ms.id]; taken {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateSession, ms.id)
	}
	m.nextSeq++
	ms.seq = m.nextSeq
	m.sessions[ms.id] = ms
	m.order = append(m.order, ms)
	m.metrics.sessionsCreated.Inc()
	m.updateStateGaugesLocked()
	m.mu.Unlock()
	go m.watch(ms)
	return nil
}

// gate builds the session's admission gate: acquire a concurrency slot
// (when bounded), flip queued -> running, and release the slot when the
// engine returns. A drain that begins while the session is still queued
// rejects it with ErrManagerDraining — the watcher records it as
// cancelled.
func (m *Manager) gate(ms *managedSession) func(context.Context) (func(), error) {
	return func(ctx context.Context) (func(), error) {
		if m.sem != nil {
			select {
			case m.sem <- struct{}{}:
			case <-m.drainCh:
				return nil, ErrManagerDraining
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		} else {
			select {
			case <-m.drainCh:
				return nil, ErrManagerDraining
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		m.setState(ms, StateRunning)
		m.logf("manager: session %s running", ms.id)
		return func() {
			if m.sem != nil {
				<-m.sem
			}
		}, nil
	}
}

func (m *Manager) setState(ms *managedSession, st SessionState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms.state = st
	m.updateStateGaugesLocked()
}

// watch waits for the session's engine to return, classifies the
// terminal state from its error, and applies the retention policy.
func (m *Manager) watch(ms *managedSession) {
	<-ms.s.finished
	ms.s.mu.Lock()
	err := ms.s.runErr
	ms.s.mu.Unlock()
	state := StateDone
	switch {
	case err == nil:
		state = StateDone
	case errors.Is(err, context.Canceled) || errors.Is(err, ErrManagerDraining):
		state = StateCancelled
	default:
		state = StateFailed
	}
	m.mu.Lock()
	ms.state = state
	m.finSeq++
	ms.finSeq = m.finSeq
	retire := ms.retire
	evicted := m.evictLocked()
	draining := m.draining
	m.updateStateGaugesLocked()
	m.mu.Unlock()
	if ms.journal != nil {
		// The engine has returned, so nothing appends anymore. The file
		// stays on disk — done/failed/drained sessions all recover on the
		// next start — unless an explicit Cancel retired the job.
		if cerr := ms.journal.close(); cerr != nil {
			m.logf("manager: session %s journal close: %v", ms.id, cerr)
		}
		if retire {
			if rerr := os.Remove(ms.journal.path()); rerr != nil {
				m.logf("manager: session %s journal retire: %v", ms.id, rerr)
			} else {
				m.logf("manager: session %s journal retired", ms.id)
			}
		}
	}
	if err != nil {
		m.logf("manager: session %s %s: %v", ms.id, state, err)
	} else {
		m.logf("manager: session %s done", ms.id)
	}
	for _, ems := range evicted {
		m.logf("manager: session %s evicted (retention %d)", ems.id, m.opts.Retention)
		if ems.journal == nil {
			continue
		}
		// Eviction is the end of the session's retention, so its journal
		// retires with it — otherwise the next restart's Recover would
		// resurrect sessions the policy already discarded, and the journal
		// dir would grow without bound. The one exception is a drain:
		// there, journals are the mechanism by which sessions survive the
		// restart, so eviction (of sessions the drain is cancelling) must
		// not destroy them.
		if draining {
			continue
		}
		if rerr := os.Remove(ems.journal.path()); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			m.logf("manager: session %s journal retire (evicted): %v", ems.id, rerr)
		} else {
			m.logf("manager: session %s journal retired (evicted)", ems.id)
		}
	}
}

// evictLocked drops the oldest-finished sessions beyond the retention
// cap and returns their records (the caller retires their journals
// outside the lock). Running, queued and handoff-pinned sessions are
// never evicted. Callers hold m.mu.
func (m *Manager) evictLocked() []*managedSession {
	if m.opts.Retention <= 0 {
		return nil
	}
	var finished []*managedSession
	for _, ms := range m.order {
		if ms.state.finished() && !ms.pinned {
			finished = append(finished, ms)
		}
	}
	if len(finished) <= m.opts.Retention {
		return nil
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].finSeq < finished[j].finSeq })
	evicted := finished[:len(finished)-m.opts.Retention]
	for _, ms := range evicted {
		delete(m.sessions, ms.id)
		for i, o := range m.order {
			if o == ms {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.metrics.forgetSession(ms.id)
		m.metrics.sessionsEvicted.Inc()
	}
	return evicted
}

// updateStateGaugesLocked recomputes the per-state session gauge from
// the registry. Callers hold m.mu.
func (m *Manager) updateStateGaugesLocked() {
	counts := map[SessionState]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCancelled: 0,
	}
	for _, ms := range m.order {
		counts[ms.state]++
	}
	for st, n := range counts {
		m.metrics.sessionsByState.With(string(st)).Set(float64(n))
	}
}

// SessionInfo is one session's row in GET /v1/sessions.
type SessionInfo struct {
	ID     string       `json:"id"`
	State  SessionState `json:"state"`
	Status Status       `json:"status"`
}

// Get returns a session by ID.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	ms, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return ms.s, true
}

// SessionHandler returns one session's route set rooted at "/" — the
// same handler the manager serves under /v1/sessions/{id}/. hcserve
// mounts the default session's routes at the server root with it, so
// the legacy single-session API and the /v1 API address the same
// session.
func (m *Manager) SessionHandler(id string) (http.Handler, bool) {
	m.mu.Lock()
	ms, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return ms.routes, true
}

// Info returns one session's info row.
func (m *Manager) Info(id string) (SessionInfo, bool) {
	m.mu.Lock()
	ms, ok := m.sessions[id]
	var state SessionState
	if ok {
		state = ms.state
	}
	m.mu.Unlock()
	if !ok {
		return SessionInfo{}, false
	}
	return SessionInfo{ID: id, State: state, Status: ms.s.Status()}, true
}

// List returns every registered session in creation order.
func (m *Manager) List() []SessionInfo {
	m.mu.Lock()
	snapshot := make([]*managedSession, len(m.order))
	copy(snapshot, m.order)
	states := make([]SessionState, len(snapshot))
	for i, ms := range snapshot {
		states[i] = ms.state
	}
	m.mu.Unlock()
	infos := make([]SessionInfo, len(snapshot))
	for i, ms := range snapshot {
		infos[i] = SessionInfo{ID: ms.id, State: states[i], Status: ms.s.Status()}
	}
	return infos
}

// Cancel stops a session's run (its state becomes cancelled; the entry
// stays listed until retention evicts it). Cancelling a journaled
// session retires its journal: the caller discarded the job, so it must
// not resurrect at the next restart — unlike a drain, which keeps every
// journal precisely so sessions resume.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	ms, ok := m.sessions[id]
	var retireNow *sessionJournal
	if ok {
		if ms.state.finished() {
			// The watcher already ran (and closed the journal); retire the
			// file directly.
			retireNow = ms.journal
		} else {
			ms.retire = true
		}
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	if retireNow != nil {
		if err := os.Remove(retireNow.path()); err != nil && !errors.Is(err, os.ErrNotExist) {
			m.logf("manager: session %s journal retire: %v", id, err)
		}
	}
	ms.s.Close()
	return nil
}

// Handoff quiesces a journaled session and returns its complete
// journal image — the byte stream a new owner feeds to AcceptHandoff.
// The sequence is the cluster rebalance protocol's source half:
//
//  1. pin the session so retention eviction cannot retire the journal
//     mid-transfer,
//  2. drain it (reject new answers, let the engine absorb any in-flight
//     completed round, stop the engine) — after this nothing appends,
//  3. fsync the journal file so even records whose sync was still
//     pending are durable, then read it whole.
//
// The session stays registered, pinned and closed until Retire removes
// it after the target acknowledges the bytes; if the transfer fails the
// journal is intact and the handoff can simply be retried (or the
// replica restarted — Recover resumes the session locally).
func (m *Manager) Handoff(ctx context.Context, id string) ([]byte, error) {
	m.mu.Lock()
	ms, ok := m.sessions[id]
	if ok && ms.journal == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotJournaled, id)
	}
	if ok {
		ms.pinned = true
	}
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	unpin := func() {
		m.mu.Lock()
		ms.pinned = false
		m.mu.Unlock()
	}
	if _, err := ms.s.Drain(ctx); err != nil {
		unpin()
		return nil, fmt.Errorf("server: handoff %s: quiesce: %w", id, err)
	}
	data, err := readFileSynced(ms.journal.path())
	if err != nil {
		unpin()
		return nil, fmt.Errorf("server: handoff %s: %w", id, err)
	}
	m.logf("manager: session %s quiesced for handoff (%d journal bytes)", id, len(data))
	return data, nil
}

// readFileSynced fsyncs path and returns its full contents: the
// stream-side half of "fsyncs and streams the journal bytes".
func readFileSynced(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close() //hclint:ignore errcheck-lite read path failed; the sync error is what gets reported
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close() //hclint:ignore errcheck-lite read path failed; the read error is what gets reported
		return nil, err
	}
	return data, f.Close()
}

// AcceptHandoff is the rebalance protocol's target half: it lands a
// handed-off journal image durably in this manager's JournalDir (temp
// file + fsync + rename + directory fsync) and rebuilds the session
// through the regular recovery path, replaying the round suffix past
// the newest journaled checkpoint. Only after the rebuilt session is
// running — and the bytes would survive a crash here — does it return
// nil; that return is the ack on which the source retires its copy, so
// a failure anywhere leaves the source as the sole owner.
func (m *Manager) AcceptHandoff(id string, data []byte) error {
	if m.opts.JournalDir == "" {
		return errors.New("server: accept handoff: no JournalDir configured")
	}
	if !sessionIDPattern.MatchString(id) {
		return fmt.Errorf("server: invalid session id %q (want %s)", id, sessionIDPattern)
	}
	recs, good, err := journal.Decode(data)
	if err != nil {
		return fmt.Errorf("server: accept handoff %s: %w", id, err)
	}
	if len(recs) == 0 {
		return fmt.Errorf("server: accept handoff %s: journal has no acknowledged records", id)
	}
	if good != int64(len(data)) {
		// A quiesced source never streams a torn tail; a short clean
		// prefix means the bytes were damaged in flight.
		return fmt.Errorf("server: accept handoff %s: journal image torn at byte %d of %d", id, good, len(data))
	}
	var created struct {
		Name string `json:"name"`
	}
	if recs[0].Type != recCreated || json.Unmarshal(recs[0].Payload, &created) != nil || created.Name != id {
		return fmt.Errorf("server: accept handoff %s: journal does not open with this session's creation record", id)
	}
	// One accept at a time: two concurrent transfers of the same ID must
	// not both pass the existence checks and then rename over each other.
	m.handoffMu.Lock()
	defer m.handoffMu.Unlock()
	if _, ok := m.Get(id); ok {
		return fmt.Errorf("%w: %q", ErrDuplicateSession, id)
	}
	if err := os.MkdirAll(m.opts.JournalDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(m.opts.JournalDir, id+".journal")
	if _, err := os.Stat(path); err == nil {
		return fmt.Errorf("%w: %q (journal already on disk)", ErrDuplicateSession, id)
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	tmp, err := os.CreateTemp(m.opts.JournalDir, id+".handoff*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() //hclint:ignore errcheck-lite the temp file is removed on this path; the write failure is what gets reported
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //hclint:ignore errcheck-lite the temp file is removed on this path; the sync failure is what gets reported
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := journal.SyncDir(path); err != nil {
		return err
	}
	recovered, err := m.recoverOne(path)
	if err != nil {
		// No ack was given, so the source still holds the authoritative
		// copy; discard the landed file rather than leaving a journal a
		// restart would resurrect into a split-brain duplicate.
		if rerr := os.Remove(path); rerr != nil {
			m.logf("manager: accept handoff %s: discard failed journal: %v", id, rerr)
		}
		return fmt.Errorf("server: accept handoff %s: %w", id, err)
	}
	m.metrics.sessionsRecovered.Inc()
	m.logf("manager: session %s accepted via handoff (%d bytes)", recovered, len(data))
	return nil
}

// Retire removes a quiesced, handed-off session and deletes its local
// journal — the source's final step once AcceptHandoff acked on the new
// owner. Refuses sessions that are still running (hand off first).
func (m *Manager) Retire(id string) error {
	s, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	if !s.Status().Done {
		return fmt.Errorf("server: retire %s: session still running", id)
	}
	m.mu.Lock()
	ms, ok := m.sessions[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	delete(m.sessions, id)
	for i, o := range m.order {
		if o == ms {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.metrics.forgetSession(id)
	m.updateStateGaugesLocked()
	m.mu.Unlock()
	if ms.journal != nil {
		if err := ms.journal.close(); err != nil {
			m.logf("manager: session %s journal close: %v", id, err)
		}
		if err := os.Remove(ms.journal.path()); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("server: retire %s: journal: %w", id, err)
		}
	}
	m.logf("manager: session %s retired (handed off)", id)
	return nil
}

// Drain gracefully shuts the manager down: no new sessions are
// admitted, queued sessions are rejected at their gate, every session
// stops accepting answers, and each engine is given until ctx to
// consume its in-flight completed round. Each session's final
// checkpoint — by construction the last one its OnCheckpoint hook saw —
// is then written to CheckpointDir as <id>.ckpt.json (atomic
// temp+rename), loadable by pipeline.ReadCheckpoint for a warm resume.
// Sessions that never completed a round have no checkpoint and write no
// file. Drain is idempotent; concurrent calls drain the same snapshot.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.drainCh)
	}
	snapshot := make([]*managedSession, len(m.order))
	copy(snapshot, m.order)
	m.mu.Unlock()
	m.logf("manager: draining %d sessions", len(snapshot))

	// Stop intake everywhere first so no session keeps advancing on new
	// answers while an earlier one drains.
	for _, ms := range snapshot {
		ms.s.beginDrain()
	}
	var errs []error
	for _, ms := range snapshot {
		ck, err := ms.s.Drain(ctx)
		if err != nil {
			errs = append(errs, fmt.Errorf("drain %s: %w", ms.id, err))
		}
		if ck == nil || m.opts.CheckpointDir == "" {
			continue
		}
		path := filepath.Join(m.opts.CheckpointDir, ms.id+".ckpt.json")
		if err := WriteCheckpointFile(path, ck); err != nil {
			errs = append(errs, fmt.Errorf("checkpoint %s: %w", ms.id, err))
			continue
		}
		m.logf("manager: session %s checkpointed to %s (%.0f spent)", ms.id, path, ck.BudgetSpent)
	}
	return errors.Join(errs...)
}

// WriteCheckpointFile persists a checkpoint atomically AND durably,
// with the same discipline as journal compaction: write a temp file in
// the target's directory, fsync it, rename over the target, then fsync
// the directory. The rename alone makes the swap atomic but not
// durable — without the file fsync a crash shortly after Drain could
// leave the *new* name pointing at unwritten blocks (an empty or
// truncated checkpoint), and without the directory fsync the rename
// itself could be forgotten. The parent directory is created if
// missing.
func WriteCheckpointFile(path string, ck *pipeline.Checkpoint) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := ck.Write(tmp); err != nil {
		tmp.Close() //hclint:ignore errcheck-lite the temp file is removed on this path; the write failure is what gets reported
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //hclint:ignore errcheck-lite the temp file is removed on this path; the sync failure is what gets reported
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return journal.SyncDir(path)
}

// CreateSessionRequest is the POST /v1/sessions payload: a dataset (the
// hcgen JSON format) plus the job's knobs.
type CreateSessionRequest struct {
	// Name is the session's ID; optional (the manager generates s1, s2,
	// ... when empty). Must match [A-Za-z0-9._-]{1,64}.
	Name string `json:"name,omitempty"`
	// Dataset is the embedded dataset document (same schema as hcgen
	// output / dataset.Read).
	Dataset json.RawMessage `json:"dataset"`
	// Config carries the pipeline knobs.
	Config SessionConfig `json:"config"`
}

// SessionConfig is the JSON form of the pipeline configuration a
// created session runs with.
type SessionConfig struct {
	// K is the checking queries selected per round; defaults to 1.
	K int `json:"k,omitempty"`
	// Budget is the total expert-answer budget. Required, > 0.
	Budget float64 `json:"budget"`
	// BudgetWindow, when > 0, makes the session streaming: each task
	// fragment admitted through POST /tasks refills the remaining budget
	// by this much, and the engine parks awaiting admissions instead of
	// finishing when the budget runs dry (see pipeline.Config.BudgetWindow).
	BudgetWindow float64 `json:"budget_window,omitempty"`
	// Init names the belief initializer (aggregate.ByName); defaults to
	// EBCC.
	Init string `json:"init,omitempty"`
	// Seed seeds the initializer; defaults to 1.
	Seed int64 `json:"seed,omitempty"`
	// MaxRounds caps the rounds; 0 means the budget binds.
	MaxRounds int `json:"max_rounds,omitempty"`
	// RoundTimeout, a Go duration string ("30s"), closes a round with
	// the partial answers collected once the deadline passes; empty
	// waits for the full panel.
	RoundTimeout string `json:"round_timeout,omitempty"`
	// Checkpoint, when present, warm-resumes the job from a checkpoint
	// document (the GET /checkpoint body or a Drain file).
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	// CostAware runs the §III-D cost-aware checking loop: each round
	// greedily buys individual (query, expert) answers by gain-per-cost
	// instead of sending every query to the full panel.
	CostAware bool `json:"cost_aware,omitempty"`
	// CostModel names how one answer is priced: "unit" (or empty) charges
	// 1 per answer; "accuracy" charges 1 + the worker's accuracy (better
	// experts cost more).
	CostModel string `json:"cost_model,omitempty"`
}

// CostModelByName resolves a SessionConfig.CostModel name to a pricing
// function for pipeline.Config.Cost; nil means unit cost (the
// pipeline's default).
func CostModelByName(name string) (func(crowd.Worker) float64, error) {
	switch name {
	case "", "unit":
		return nil, nil
	case "accuracy":
		return func(w crowd.Worker) float64 { return 1 + w.Accuracy }, nil
	default:
		return nil, fmt.Errorf("server: unknown cost model %q (want unit or accuracy)", name)
	}
}

// buildFromRequest translates the HTTP payload into the session's
// constructor arguments. CreateFromRequest and Recover share it — it is
// the reason a journaled creation record is a sufficient recovery
// recipe: everything a session runs with is derived deterministically
// from the request document.
func buildFromRequest(req CreateSessionRequest) (*dataset.Dataset, pipeline.Config, SessionOptions, error) {
	var opts SessionOptions
	fail := func(err error) (*dataset.Dataset, pipeline.Config, SessionOptions, error) {
		return nil, pipeline.Config{}, SessionOptions{}, err
	}
	if len(req.Dataset) == 0 {
		return fail(errors.New("server: create: missing dataset"))
	}
	ds, err := dataset.Read(bytes.NewReader(req.Dataset))
	if err != nil {
		return fail(fmt.Errorf("server: create: dataset: %w", err))
	}
	sc := req.Config
	if sc.Budget <= 0 {
		return fail(errors.New("server: create: config.budget must be > 0"))
	}
	if sc.K == 0 {
		sc.K = 1
	}
	if sc.K < 0 {
		return fail(errors.New("server: create: config.k must be >= 1"))
	}
	if sc.BudgetWindow < 0 {
		return fail(errors.New("server: create: config.budget_window must be >= 0"))
	}
	initName := sc.Init
	if initName == "" {
		initName = "EBCC"
	}
	seed := sc.Seed
	if seed == 0 {
		seed = 1
	}
	agg, err := aggregate.ByName(initName, seed)
	if err != nil {
		return fail(fmt.Errorf("server: create: %w", err))
	}
	couple, err := ds.EstimateCoupling()
	if err != nil {
		return fail(fmt.Errorf("server: create: %w", err))
	}
	cost, err := CostModelByName(sc.CostModel)
	if err != nil {
		return fail(fmt.Errorf("server: create: %w", err))
	}
	cfg := pipeline.Config{
		K:             sc.K,
		Budget:        sc.Budget,
		BudgetWindow:  sc.BudgetWindow,
		Init:          agg,
		PriorCoupling: couple,
		MaxRounds:     sc.MaxRounds,
		Cost:          cost,
	}
	opts.CostAware = sc.CostAware
	if sc.RoundTimeout != "" {
		d, err := time.ParseDuration(sc.RoundTimeout)
		if err != nil || d < 0 {
			return fail(fmt.Errorf("server: create: bad round_timeout %q", sc.RoundTimeout))
		}
		opts.RoundTimeout = d
	}
	if len(sc.Checkpoint) > 0 {
		ck, err := pipeline.ReadCheckpoint(bytes.NewReader(sc.Checkpoint))
		if err != nil {
			return fail(fmt.Errorf("server: create: checkpoint: %w", err))
		}
		opts.Checkpoint = ck
	}
	return ds, cfg, opts, nil
}

// CreateFromRequest builds and starts a session from the HTTP payload.
// Under a JournalDir the request document itself is journaled as the
// session's recovery recipe.
func (m *Manager) CreateFromRequest(req CreateSessionRequest) (string, *Session, error) {
	ds, cfg, opts, err := buildFromRequest(req)
	if err != nil {
		return "", nil, err
	}
	opts.journalReq = &req
	return m.Create(req.Name, ds, cfg, opts)
}

// Handler returns the manager's HTTP surface:
//
//	POST   /v1/sessions           create a session (CreateSessionRequest)
//	GET    /v1/sessions           list sessions (creation order)
//	GET    /v1/sessions/{id}      one session's info (state + status)
//	DELETE /v1/sessions/{id}      cancel a session's run
//	GET    /v1/metrics            the manager's metrics snapshot
//	*      /v1/sessions/{id}/...  the session's own routes (queries,
//	                              answers, status, checkpoint, labels,
//	                              metrics — see Handler's route list)
//
// Error codes: 400 malformed payloads, 404 unknown session, 405 wrong
// method (with Allow), 409 duplicate session name, 503 create during
// drain.
func (m *Manager) Handler() http.Handler { return m.handler }

func (m *Manager) buildHandler() http.Handler {
	rt := newRouter(m.metrics.http, m.logger)
	rt.handle("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req CreateSessionRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			rt.httpError(w, http.StatusBadRequest, "bad create payload: "+err.Error())
			return
		}
		id, _, err := m.CreateFromRequest(req)
		if err != nil {
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrManagerDraining):
				code = http.StatusServiceUnavailable
			case errors.Is(err, ErrDuplicateSession):
				code = http.StatusConflict
			}
			rt.httpError(w, code, err.Error())
			return
		}
		info, _ := m.Info(id)
		rt.writeJSON(w, http.StatusCreated, info)
	})
	rt.handle("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		rt.writeJSON(w, http.StatusOK, map[string]any{"sessions": m.List()})
	})
	rt.handle("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := m.Info(r.PathValue("id"))
		if !ok {
			rt.httpError(w, http.StatusNotFound, "unknown session "+r.PathValue("id"))
			return
		}
		rt.writeJSON(w, http.StatusOK, info)
	})
	rt.handle("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Cancel(r.PathValue("id")); err != nil {
			rt.httpError(w, http.StatusNotFound, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	metricsHandler := m.metrics.Handler()
	rt.handle("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		metricsHandler.ServeHTTP(w, r)
	})
	// The per-session proxy accepts every method: the session's own
	// router enforces methods (and 405s) per sub-route.
	rt.handle("/v1/sessions/{id}/{rest...}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		m.mu.Lock()
		ms, ok := m.sessions[id]
		m.mu.Unlock()
		if !ok {
			rt.httpError(w, http.StatusNotFound, "unknown session "+id)
			return
		}
		http.StripPrefix("/v1/sessions/"+id, ms.routes).ServeHTTP(w, r)
	})
	return rt.handler()
}
