package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/dataset"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
)

// sizedDataset builds a SentiLike dataset with the given task count and
// generator seed, so concurrent-session tests can give every session
// distinct work.
func sizedDataset(t *testing.T, tasks int, seed int64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = tasks
	ds, err := dataset.SentiLike(rngutil.New(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// flipAnswers is the deterministic imperfect-expert policy shared by the
// concurrent HTTP clients and the sequential reference run: each value
// is the truth XORed with a flip that depends only on (fact index,
// worker ID) — never on arrival order or scheduling — so any two runs
// that consume the same rounds see the same families.
func flipAnswers(ds *dataset.Dataset, worker string, facts []int) []bool {
	h := 0
	for _, c := range []byte(worker) {
		h += int(c)
	}
	values := make([]bool, len(facts))
	for i, f := range facts {
		v := ds.Truth[f]
		if (f*131+h*17)%7 == 0 {
			v = !v
		}
		values[i] = v
	}
	return values
}

// driveFlip answers every round in-process with flipAnswers until the
// session finishes; the sequential reference for the concurrent runs.
func driveFlip(s *Session, ds *dataset.Dataset) error {
	deadline := time.After(20 * time.Second)
	for {
		select {
		case <-s.finished:
			return nil
		case <-deadline:
			return fmt.Errorf("session did not finish")
		default:
		}
		progressed := false
		for _, id := range s.Experts() {
			round, facts, ok := s.Queries(id)
			if !ok {
				continue
			}
			if err := s.Answer(round, id, flipAnswers(ds, id, facts)); err != nil {
				return err
			}
			progressed = true
		}
		if !progressed {
			time.Sleep(time.Millisecond)
		}
	}
}

// sessionSpec is one concurrent session's recipe.
type sessionSpec struct {
	name     string
	tasks    int
	dsSeed   int64
	aggSeed  int64
	budget   float64
	k        int
	refDS    *dataset.Dataset
	expected []bool
}

// TestManagerMultiSessionDeterministicGivenSeed is the acceptance check
// for the multi-session service: N sessions created over the /v1 API
// and answered by concurrent per-expert clients must produce labels
// byte-identical to the same-seed single-session runs. It runs under
// -race in CI (make race) and in the -count=2 determinism suite.
func TestManagerMultiSessionDeterministicGivenSeed(t *testing.T) {
	specs := []*sessionSpec{
		{name: "alpha", tasks: 6, dsSeed: 31, aggSeed: 1, budget: 12, k: 1},
		{name: "beta", tasks: 8, dsSeed: 32, aggSeed: 2, budget: 16, k: 2},
		{name: "gamma", tasks: 10, dsSeed: 33, aggSeed: 3, budget: 12, k: 1},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Reference: plain single sessions, driven sequentially.
	for _, sp := range specs {
		sp.refDS = sizedDataset(t, sp.tasks, sp.dsSeed)
		agg, err := aggregate.ByName("EBCC", sp.aggSeed)
		if err != nil {
			t.Fatal(err)
		}
		couple, err := sp.refDS.EstimateCoupling()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewSession(ctx, sp.refDS, pipeline.Config{
			K: sp.k, Budget: sp.budget, Init: agg, PriorCoupling: couple,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := driveFlip(ref, sp.refDS); err != nil {
			t.Fatalf("reference %s: %v", sp.name, err)
		}
		res, err := ref.Wait(ctx)
		if err != nil {
			t.Fatalf("reference %s: %v", sp.name, err)
		}
		sp.expected = res.Labels
		ref.Close()
	}

	// Concurrent: the same jobs through the manager's HTTP surface, every
	// (session, expert) pair answering from its own goroutine.
	m := NewManager(ManagerOptions{MaxRunning: len(specs)})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	mc := NewManagerClient(srv.URL)

	for _, sp := range specs {
		var dsBuf bytes.Buffer
		if err := sp.refDS.Write(&dsBuf); err != nil {
			t.Fatal(err)
		}
		info, err := mc.Create(ctx, CreateSessionRequest{
			Name:    sp.name,
			Dataset: dsBuf.Bytes(),
			Config:  SessionConfig{K: sp.k, Budget: sp.budget, Seed: sp.aggSeed},
		})
		if err != nil {
			t.Fatalf("create %s: %v", sp.name, err)
		}
		if info.ID != sp.name || info.Status.Done {
			t.Fatalf("create %s: info %+v", sp.name, info)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for _, sp := range specs {
		sp := sp
		sc := mc.Session(sp.name)
		experts, err := sc.Experts(ctx)
		if err != nil {
			t.Fatalf("experts %s: %v", sp.name, err)
		}
		for _, id := range experts {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				err := sc.AnswerLoop(ctx, id, func(facts []int) []bool {
					return flipAnswers(sp.refDS, id, facts)
				}, time.Millisecond)
				if err != nil {
					errCh <- fmt.Errorf("%s/%s: %w", sp.name, id, err)
				}
			}(id)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	for _, sp := range specs {
		got, err := mc.Session(sp.name).Labels(ctx)
		if err != nil {
			t.Fatalf("labels %s: %v", sp.name, err)
		}
		gotJSON, _ := json.Marshal(got)
		wantJSON, _ := json.Marshal(sp.expected)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("%s: concurrent labels diverge from single-session reference\n got %s\nwant %s",
				sp.name, gotJSON, wantJSON)
		}
		info, err := mc.Info(ctx, sp.name)
		if err != nil || info.State != StateDone {
			t.Errorf("%s: info = %+v, %v; want done", sp.name, info, err)
		}
	}
}

// TestManagerDrainCheckpointDeterministicGivenSeed pins the graceful
// drain contract: after a few completed rounds, Drain must (a) reject
// further answers with 503, (b) persist one checkpoint per session to
// the checkpoint directory, and (c) make the persisted file
// byte-identical to the last OnCheckpoint emission — so Ctrl-C never
// loses progress past the last completed round.
func TestManagerDrainCheckpointDeterministicGivenSeed(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dir := t.TempDir()
	m := NewManager(ManagerOptions{CheckpointDir: dir})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	ds := sizedDataset(t, 8, 41)
	var mu sync.Mutex
	var lastEmitted *pipeline.Checkpoint
	var rounds atomic.Int64
	cfg := pipeline.Config{
		K: 1, Budget: 200, // far beyond what the test answers: the drain, not the budget, ends the run
		OnCheckpoint: func(ck *pipeline.Checkpoint) {
			mu.Lock()
			lastEmitted = ck
			mu.Unlock()
			rounds.Add(1)
		},
	}
	id, s, err := m.Create("drainee", ds, cfg, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}

	loopCtx, stopLoops := context.WithCancel(ctx)
	defer stopLoops()
	var wg sync.WaitGroup
	sc := NewSessionClient(srv.URL, id)
	for _, w := range s.Experts() {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			// Errors are expected once the drain closes the session early.
			_ = sc.AnswerLoop(loopCtx, w, func(facts []int) []bool {
				return flipAnswers(ds, w, facts)
			}, time.Millisecond)
		}(w)
	}
	for rounds.Load() < 3 {
		select {
		case <-ctx.Done():
			t.Fatal("sessions never completed 3 rounds")
		case <-time.After(time.Millisecond):
		}
	}

	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	stopLoops()
	wg.Wait()

	// (a) the drained manager admits nothing new...
	if _, _, err := m.Create("late", ds, cfg, SessionOptions{}); !errors.Is(err, ErrManagerDraining) {
		t.Errorf("create after drain: %v, want ErrManagerDraining", err)
	}
	// ...and the drained session rejects answers at the HTTP layer (410:
	// the drain already closed it; the transient mid-drain code is 503 —
	// both benign to AnswerLoop).
	resp, err := http.Post(srv.URL+"/v1/sessions/"+id+"/answers", "application/json",
		bytes.NewReader([]byte(`{"round":1,"worker":"x","values":[true]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("post-drain answer status = %d, want 410", resp.StatusCode)
	}

	// (b) the final checkpoint file exists and loads.
	path := filepath.Join(dir, id+".ckpt.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("drain wrote no checkpoint: %v", err)
	}
	ck, err := pipeline.ReadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("drained checkpoint does not load: %v", err)
	}
	if ck.BudgetSpent <= 0 {
		t.Errorf("drained checkpoint spent = %v, want > 0", ck.BudgetSpent)
	}

	// (c) the file is byte-identical to the last OnCheckpoint emission.
	mu.Lock()
	last := lastEmitted
	mu.Unlock()
	if last == nil {
		t.Fatal("no checkpoint emission captured")
	}
	var want bytes.Buffer
	if err := last.Write(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want.Bytes()) {
		t.Errorf("drained file differs from last OnCheckpoint emission (%d vs %d bytes)",
			len(raw), want.Len())
	}

	// The checkpoint warm-resumes into a fresh session.
	resumed, err := NewSessionResume(ctx, ds, pipeline.Config{K: 1, Budget: ck.BudgetSpent + 8}, ck)
	if err != nil {
		t.Fatalf("resume from drained checkpoint: %v", err)
	}
	if err := driveFlip(resumed, ds); err != nil {
		t.Fatalf("resumed session: %v", err)
	}
	if _, err := resumed.Wait(ctx); err != nil {
		t.Fatalf("resumed session: %v", err)
	}
	resumed.Close()
}

// TestManagerSemaphoreBoundsRunning checks the concurrency gate: with
// MaxRunning=1 the second session stays queued — publishing no rounds —
// until the first finishes, then runs to completion.
func TestManagerSemaphoreBoundsRunning(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	m := NewManager(ManagerOptions{MaxRunning: 1})

	dsA := sizedDataset(t, 6, 51)
	dsB := sizedDataset(t, 6, 52)
	_, sa, err := m.Create("first", dsA, pipeline.Config{K: 1, Budget: 8}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the first session holds the only slot (it published a
	// round) BEFORE creating the second — the gates run in goroutines, so
	// two queued sessions race for the slot in arbitrary order.
	for {
		if _, _, ok := sa.Queries(sa.Experts()[0]); ok {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("first session never published")
		case <-time.After(time.Millisecond):
		}
	}
	_, sb, err := m.Create("second", dsB, pipeline.Config{K: 1, Budget: 8}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The second must sit queued with nothing to answer.
	if info, _ := m.Info("second"); info.State != StateQueued {
		t.Fatalf("second state = %q, want queued", info.State)
	}
	if _, _, ok := sb.Queries(sb.Experts()[0]); ok {
		t.Fatal("queued session published a round")
	}

	if err := answerAll(sa, dsA); err != nil {
		t.Fatal(err)
	}
	if err := answerAll(sb, dsB); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"first", "second"} {
		if info, _ := m.Info(id); info.State != StateDone {
			t.Errorf("%s state = %q, want done", id, info.State)
		}
	}
}

// TestManagerRetentionEviction checks finished-session eviction: beyond
// the retention cap the oldest-finished sessions disappear from the
// registry and their per-session metric labels are removed.
func TestManagerRetentionEviction(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	m := NewManager(ManagerOptions{Retention: 1})

	ids := []string{"old", "mid", "new"}
	for _, id := range ids {
		ds := sizedDataset(t, 6, 60)
		_, s, err := m.Create(id, ds, pipeline.Config{K: 1, Budget: 4}, SessionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := answerAll(s, ds); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// The watcher applies retention asynchronously after the engine
	// returns; poll briefly.
	deadline := time.After(5 * time.Second)
	for {
		if len(m.List()) == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("retention not applied: %d sessions remain", len(m.List()))
		case <-time.After(time.Millisecond):
		}
	}
	if _, ok := m.Get("new"); !ok {
		t.Error("newest finished session evicted; want it retained")
	}
	for _, id := range []string{"old", "mid"} {
		if _, ok := m.Get(id); ok {
			t.Errorf("session %s not evicted", id)
		}
	}
	snap := m.Metrics().Registry().Snapshot()
	rounds := snap["session_rounds_total"]
	if len(rounds.Values) != 1 {
		t.Errorf("per-session metric labels after eviction = %v, want only the retained session",
			rounds.Values)
	}
	if got := snap["manager_sessions_evicted_total"]; got.Value == nil || *got.Value != 2 {
		t.Errorf("evicted counter = %+v, want 2", got)
	}
}

// TestManagerHTTPErrors walks the /v1 surface's error contract: 400 on
// malformed payloads, 404 on unknown sessions, 405 with Allow on wrong
// methods, 409 on duplicate names.
func TestManagerHTTPErrors(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	m := NewManager(ManagerOptions{})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	mc := NewManagerClient(srv.URL)

	ds := sizedDataset(t, 6, 70)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	okReq := CreateSessionRequest{
		Name:    "dup",
		Dataset: dsBuf.Bytes(),
		Config:  SessionConfig{Budget: 4},
	}
	if _, err := mc.Create(ctx, okReq); err != nil {
		t.Fatal(err)
	}

	wantStatus := func(err error, code int, label string) {
		t.Helper()
		var se *StatusError
		if !errors.As(err, &se) || se.Code != code {
			t.Errorf("%s: err = %v, want HTTP %d", label, err, code)
		}
	}
	_, err := mc.Create(ctx, okReq)
	wantStatus(err, http.StatusConflict, "duplicate name")
	_, err = mc.Create(ctx, CreateSessionRequest{Dataset: dsBuf.Bytes(), Config: SessionConfig{}})
	wantStatus(err, http.StatusBadRequest, "missing budget")
	_, err = mc.Create(ctx, CreateSessionRequest{Config: SessionConfig{Budget: 4}})
	wantStatus(err, http.StatusBadRequest, "missing dataset")
	_, err = mc.Create(ctx, CreateSessionRequest{
		Name: "bad/name", Dataset: dsBuf.Bytes(), Config: SessionConfig{Budget: 4},
	})
	wantStatus(err, http.StatusBadRequest, "invalid name")
	_, err = mc.Create(ctx, CreateSessionRequest{
		Name: "badrt", Dataset: dsBuf.Bytes(),
		Config: SessionConfig{Budget: 4, RoundTimeout: "not-a-duration"},
	})
	wantStatus(err, http.StatusBadRequest, "bad round_timeout")
	_, err = mc.Info(ctx, "ghost")
	wantStatus(err, http.StatusNotFound, "unknown session info")
	err = mc.Cancel(ctx, "ghost")
	wantStatus(err, http.StatusNotFound, "unknown session cancel")
	if _, err := mc.Session("ghost").Status(ctx); err == nil {
		t.Error("proxy to unknown session succeeded")
	}

	// Wrong method on a collection route: instrumented 405 with Allow.
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/sessions", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/sessions = %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != "GET, POST" {
		t.Errorf("Allow = %q, want \"GET, POST\"", got)
	}
	if got := m.Metrics().http.methodRejected.Value(); got != 1 {
		t.Errorf("manager method rejected counter = %v, want 1", got)
	}

	// The cancel route works and flips the state.
	if err := mc.Cancel(ctx, "dup"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		info, err := mc.Info(ctx, "dup")
		if err != nil {
			t.Fatal(err)
		}
		if info.State == StateCancelled {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("state after cancel = %q, want cancelled", info.State)
		case <-time.After(time.Millisecond):
		}
	}
}
