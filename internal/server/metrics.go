package server

import (
	"net/http"

	"hcrowd/internal/obsv"
	"hcrowd/internal/pipeline"
)

// Metrics is the labeling service's instrument bundle: HTTP traffic,
// session round-lifecycle events, and — via its pipeline.MetricsSink
// implementation — the checking loop's per-round figures, including the
// incremental selectors' CondEntropy-eval counts (the same unit
// BENCH_core.json measures). One bundle serves one Session; scrape it at
// GET /metrics.
type Metrics struct {
	reg *obsv.Registry

	// HTTP layer.
	httpRequests *obsv.CounterVec // route, code
	httpLatency  *obsv.HistogramVec
	httpInflight *obsv.Gauge
	httpPanics   *obsv.Counter
	writeErrors  *obsv.Counter

	// Session round lifecycle.
	roundsPublished *obsv.Counter
	roundsCompleted *obsv.Counter
	roundsExpired   *obsv.Counter
	answersAccepted *obsv.Counter
	answersRejected *obsv.CounterVec // reason

	// Pipeline rounds (fed by RecordRound).
	pipelineRounds   *obsv.Counter
	roundSeconds     *obsv.Histogram
	queriesBought    *obsv.Counter
	answersRequested *obsv.Counter
	answersReceived  *obsv.Counter
	budgetSpent      *obsv.Gauge
	quality          *obsv.Gauge
	frozenFacts      *obsv.Gauge
	selectorEvals    *obsv.Counter
	selectorRescans  *obsv.Counter
	selectorReused   *obsv.Counter
}

// NewMetrics builds a bundle with every instrument registered.
func NewMetrics() *Metrics {
	reg := obsv.NewRegistry()
	return &Metrics{
		reg: reg,

		httpRequests: reg.CounterVec("http_requests_total",
			"HTTP requests served", "route", "code"),
		httpLatency: reg.HistogramVec("http_request_seconds",
			"HTTP request latency", nil, "route"),
		httpInflight: reg.Gauge("http_inflight_requests",
			"requests currently being handled"),
		httpPanics: reg.Counter("http_panics_total",
			"handler panics recovered to 500"),
		writeErrors: reg.Counter("http_write_errors_total",
			"response bodies that failed to encode or write"),

		roundsPublished: reg.Counter("session_rounds_published_total",
			"checking rounds published to experts"),
		roundsCompleted: reg.Counter("session_rounds_completed_total",
			"rounds completed with a full panel"),
		roundsExpired: reg.Counter("session_rounds_expired_total",
			"rounds closed by the timeout with a partial panel"),
		answersAccepted: reg.Counter("session_answers_accepted_total",
			"expert answer sets accepted"),
		answersRejected: reg.CounterVec("session_answers_rejected_total",
			"expert answer sets rejected", "reason"),

		pipelineRounds: reg.Counter("pipeline_rounds_total",
			"checking rounds the pipeline completed"),
		roundSeconds: reg.Histogram("pipeline_round_seconds",
			"pipeline round wall time", nil),
		queriesBought: reg.Counter("pipeline_queries_bought_total",
			"checking queries selected"),
		answersRequested: reg.Counter("pipeline_answers_requested_total",
			"expert answers requested"),
		answersReceived: reg.Counter("pipeline_answers_received_total",
			"expert answers received"),
		budgetSpent: reg.Gauge("pipeline_budget_spent",
			"cumulative budget consumed (incl. resumed spend)"),
		quality: reg.Gauge("pipeline_quality",
			"total belief quality after the latest round"),
		frozenFacts: reg.Gauge("pipeline_frozen_facts",
			"facts settled by the stopping rule"),
		selectorEvals: reg.Counter("selector_evals_total",
			"CondEntropy-core evaluations by the incremental selector"),
		selectorRescans: reg.Counter("selector_rescans_total",
			"task gain caches rebuilt (selector cache misses)"),
		selectorReused: reg.Counter("selector_reused_total",
			"task gain caches reused across rounds (selector cache hits)"),
	}
}

// RecordRound implements pipeline.MetricsSink.
func (m *Metrics) RecordRound(r pipeline.RoundMetrics) {
	m.pipelineRounds.Inc()
	m.roundSeconds.Observe(r.Duration.Seconds())
	m.queriesBought.Add(float64(r.QueriesBought))
	m.answersRequested.Add(float64(r.AnswersRequested))
	m.answersReceived.Add(float64(r.AnswersReceived))
	m.budgetSpent.Set(r.BudgetSpent)
	m.quality.Set(r.Quality)
	m.frozenFacts.Set(float64(r.FrozenFacts))
	m.selectorEvals.Add(float64(r.Selector.Evals))
	m.selectorRescans.Add(float64(r.Selector.Rescans))
	m.selectorReused.Add(float64(r.Selector.Reused))
}

// Registry exposes the underlying registry (e.g. to register extra
// service-specific instruments alongside).
func (m *Metrics) Registry() *obsv.Registry { return m.reg }

// Handler serves the metrics snapshot as JSON.
func (m *Metrics) Handler() http.Handler { return m.reg.Handler() }

var _ pipeline.MetricsSink = (*Metrics)(nil)
