package server

import (
	"net/http"

	"hcrowd/internal/obsv"
	"hcrowd/internal/pipeline"
)

// Metrics is the labeling service's instrument bundle: HTTP traffic,
// session round-lifecycle events, and — via its pipeline.MetricsSink
// implementation — the checking loop's per-round figures, including the
// incremental selectors' CondEntropy-eval counts (the same unit
// BENCH_core.json measures). One bundle serves one Session; scrape it at
// GET /metrics.
type Metrics struct {
	reg *obsv.Registry

	// HTTP layer (shared shape with the manager's bundle; see
	// httpInstruments).
	http *httpInstruments

	// Session round lifecycle.
	roundsPublished *obsv.Counter
	roundsCompleted *obsv.Counter
	roundsExpired   *obsv.Counter
	answersAccepted *obsv.Counter
	answersRejected *obsv.CounterVec // reason
	tasksAdmitted   *obsv.Counter    // streaming sessions: fragments accepted

	// Pipeline rounds (fed by RecordRound).
	pipelineRounds   *obsv.Counter
	roundSeconds     *obsv.Histogram
	queriesBought    *obsv.Counter
	answersRequested *obsv.Counter
	answersReceived  *obsv.Counter
	budgetSpent      *obsv.Gauge
	quality          *obsv.Gauge
	frozenFacts      *obsv.Gauge
	selectorEvals    *obsv.Counter
	selectorRescans  *obsv.Counter
	selectorReused   *obsv.Counter

	// Durability (journal-backed sessions only; zero otherwise).
	journal *journalInstruments
}

// journalInstruments is the write-ahead journal's instrument set:
// append/sync volume (every sync is an fsync on the session's ack path,
// so syncSeconds is the durability tax on answer latency), compactions,
// I/O errors, and the records replayed into the session at recovery.
type journalInstruments struct {
	appends     *obsv.Counter
	bytes       *obsv.Counter
	syncs       *obsv.Counter
	syncSeconds *obsv.Histogram
	compactions *obsv.Counter
	errors      *obsv.Counter
	replayed    *obsv.Counter
}

// newJournalInstruments registers the journal instrument set.
func newJournalInstruments(reg *obsv.Registry) *journalInstruments {
	return &journalInstruments{
		appends: reg.Counter("journal_appends_total",
			"records appended to the session journal"),
		bytes: reg.Counter("journal_bytes_total",
			"payload bytes appended to the session journal"),
		syncs: reg.Counter("journal_syncs_total",
			"journal fsyncs (each one a client-visible commit point)"),
		syncSeconds: reg.Histogram("journal_sync_seconds",
			"journal fsync latency", nil),
		compactions: reg.Counter("journal_compactions_total",
			"journal logs folded into their latest checkpoint"),
		errors: reg.Counter("journal_errors_total",
			"journal append/sync/compact failures (each fails its session)"),
		replayed: reg.Counter("journal_replayed_records_total",
			"journaled answers re-injected during crash recovery"),
	}
}

// httpInstruments is the HTTP middleware's instrument set. The session
// bundle and the manager bundle each own one (the manager's under a
// "manager_" name prefix), so the route middleware in http.go serves
// both without knowing which layer it instruments.
type httpInstruments struct {
	requests       *obsv.CounterVec // route, code
	latency        *obsv.HistogramVec
	inflight       *obsv.Gauge
	panics         *obsv.Counter
	writeErrors    *obsv.Counter
	methodRejected *obsv.Counter
}

// newHTTPInstruments registers the middleware instrument set under the
// given metric-name prefix.
func newHTTPInstruments(reg *obsv.Registry, prefix string) *httpInstruments {
	return &httpInstruments{
		requests: reg.CounterVec(prefix+"http_requests_total",
			"HTTP requests served", "route", "code"),
		latency: reg.HistogramVec(prefix+"http_request_seconds",
			"HTTP request latency", nil, "route"),
		inflight: reg.Gauge(prefix+"http_inflight_requests",
			"requests currently being handled"),
		panics: reg.Counter(prefix+"http_panics_total",
			"handler panics recovered to 500"),
		writeErrors: reg.Counter(prefix+"http_write_errors_total",
			"response bodies that failed to encode or write"),
		methodRejected: reg.Counter(prefix+"http_method_rejected_total",
			"requests refused with 405 Method Not Allowed"),
	}
}

// NewMetrics builds a bundle with every instrument registered.
func NewMetrics() *Metrics {
	reg := obsv.NewRegistry()
	return &Metrics{
		reg: reg,

		http: newHTTPInstruments(reg, ""),

		roundsPublished: reg.Counter("session_rounds_published_total",
			"checking rounds published to experts"),
		roundsCompleted: reg.Counter("session_rounds_completed_total",
			"rounds completed with a full panel"),
		roundsExpired: reg.Counter("session_rounds_expired_total",
			"rounds closed by the timeout with a partial panel"),
		answersAccepted: reg.Counter("session_answers_accepted_total",
			"expert answer sets accepted"),
		answersRejected: reg.CounterVec("session_answers_rejected_total",
			"expert answer sets rejected", "reason"),
		tasksAdmitted: reg.Counter("session_fragments_admitted_total",
			"task fragments admitted into the streaming session"),

		pipelineRounds: reg.Counter("pipeline_rounds_total",
			"checking rounds the pipeline completed"),
		roundSeconds: reg.Histogram("pipeline_round_seconds",
			"pipeline round wall time", nil),
		queriesBought: reg.Counter("pipeline_queries_bought_total",
			"checking queries selected"),
		answersRequested: reg.Counter("pipeline_answers_requested_total",
			"expert answers requested"),
		answersReceived: reg.Counter("pipeline_answers_received_total",
			"expert answers received"),
		budgetSpent: reg.Gauge("pipeline_budget_spent",
			"cumulative budget consumed (incl. resumed spend)"),
		quality: reg.Gauge("pipeline_quality",
			"total belief quality after the latest round"),
		frozenFacts: reg.Gauge("pipeline_frozen_facts",
			"facts settled by the stopping rule"),
		selectorEvals: reg.Counter("selector_evals_total",
			"CondEntropy-core evaluations by the incremental selector"),
		selectorRescans: reg.Counter("selector_rescans_total",
			"task gain caches rebuilt (selector cache misses)"),
		selectorReused: reg.Counter("selector_reused_total",
			"task gain caches reused across rounds (selector cache hits)"),

		journal: newJournalInstruments(reg),
	}
}

// RecordRound implements pipeline.MetricsSink.
func (m *Metrics) RecordRound(r pipeline.RoundMetrics) {
	m.pipelineRounds.Inc()
	m.roundSeconds.Observe(r.Duration.Seconds())
	m.queriesBought.Add(float64(r.QueriesBought))
	m.answersRequested.Add(float64(r.AnswersRequested))
	m.answersReceived.Add(float64(r.AnswersReceived))
	m.budgetSpent.Set(r.BudgetSpent)
	m.quality.Set(r.Quality)
	m.frozenFacts.Set(float64(r.FrozenFacts))
	m.selectorEvals.Add(float64(r.Selector.Evals))
	m.selectorRescans.Add(float64(r.Selector.Rescans))
	m.selectorReused.Add(float64(r.Selector.Reused))
}

// Registry exposes the underlying registry (e.g. to register extra
// service-specific instruments alongside).
func (m *Metrics) Registry() *obsv.Registry { return m.reg }

// Handler serves the metrics snapshot as JSON.
func (m *Metrics) Handler() http.Handler { return m.reg.Handler() }

var _ pipeline.MetricsSink = (*Metrics)(nil)

// ManagerMetrics is the session manager's bundle: its own HTTP traffic
// under a manager_ prefix (so one scrape can't confuse service-level and
// session-level request counts), session lifecycle counters, and
// per-session labeled families fed by each session's pipeline sink.
// Evicting a session removes its label values (forgetSession), keeping
// the snapshot bounded by the retention policy rather than by service
// uptime.
type ManagerMetrics struct {
	reg *obsv.Registry

	http *httpInstruments

	sessionsCreated   *obsv.Counter
	sessionsEvicted   *obsv.Counter
	sessionsRecovered *obsv.Counter
	sessionsByState   *obsv.GaugeVec // state

	// Cluster routing and rebalance (replica mode; zero otherwise).
	clusterRedirects *obsv.Counter
	clusterProxied   *obsv.Counter
	clusterHandoffs  *obsv.Counter
	clusterAccepts   *obsv.Counter

	// Per-session families ("session" label = session ID).
	sessionRounds  *obsv.CounterVec
	sessionAnswers *obsv.CounterVec
	sessionBudget  *obsv.GaugeVec
	sessionQuality *obsv.GaugeVec
}

// NewManagerMetrics builds the manager bundle with every instrument
// registered.
func NewManagerMetrics() *ManagerMetrics {
	reg := obsv.NewRegistry()
	return &ManagerMetrics{
		reg: reg,

		http: newHTTPInstruments(reg, "manager_"),

		sessionsCreated: reg.Counter("manager_sessions_created_total",
			"sessions created or adopted"),
		sessionsEvicted: reg.Counter("manager_sessions_evicted_total",
			"finished sessions evicted by the retention policy"),
		sessionsRecovered: reg.Counter("manager_sessions_recovered_total",
			"sessions rebuilt from their journals at startup"),
		sessionsByState: reg.GaugeVec("manager_sessions",
			"registered sessions by lifecycle state", "state"),

		clusterRedirects: reg.Counter("cluster_redirects_total",
			"session requests 307-redirected to their owning replica"),
		clusterProxied: reg.Counter("cluster_proxied_total",
			"session requests reverse-proxied to their owning replica"),
		clusterHandoffs: reg.Counter("cluster_handoffs_total",
			"sessions handed off to another replica (journal streamed, local copy retired)"),
		clusterAccepts: reg.Counter("cluster_accepts_total",
			"sessions accepted from another replica's journal handoff"),

		sessionRounds: reg.CounterVec("session_rounds_total",
			"pipeline rounds completed, per session", "session"),
		sessionAnswers: reg.CounterVec("session_answers_total",
			"expert answers received, per session", "session"),
		sessionBudget: reg.GaugeVec("session_budget_spent",
			"cumulative budget consumed, per session", "session"),
		sessionQuality: reg.GaugeVec("session_quality",
			"belief quality after the latest round, per session", "session"),
	}
}

// sessionSink returns a pipeline.MetricsSink that feeds the per-session
// labeled families for one session ID.
func (m *ManagerMetrics) sessionSink(id string) pipeline.MetricsSink {
	return &perSessionSink{
		rounds:  m.sessionRounds.With(id),
		answers: m.sessionAnswers.With(id),
		budget:  m.sessionBudget.With(id),
		quality: m.sessionQuality.With(id),
	}
}

// forgetSession drops a session's label values from every per-session
// family.
func (m *ManagerMetrics) forgetSession(id string) {
	m.sessionRounds.Remove(id)
	m.sessionAnswers.Remove(id)
	m.sessionBudget.Remove(id)
	m.sessionQuality.Remove(id)
}

// Registry exposes the underlying registry.
func (m *ManagerMetrics) Registry() *obsv.Registry { return m.reg }

// Handler serves the manager's metrics snapshot as JSON.
func (m *ManagerMetrics) Handler() http.Handler { return m.reg.Handler() }

// perSessionSink records one session's round metrics under its
// session-labeled families.
type perSessionSink struct {
	rounds  *obsv.Counter
	answers *obsv.Counter
	budget  *obsv.Gauge
	quality *obsv.Gauge
}

// RecordRound implements pipeline.MetricsSink.
func (k *perSessionSink) RecordRound(r pipeline.RoundMetrics) {
	k.rounds.Inc()
	k.answers.Add(float64(r.AnswersReceived))
	k.budget.Set(r.BudgetSpent)
	k.quality.Set(r.Quality)
}

var _ pipeline.MetricsSink = (*perSessionSink)(nil)
