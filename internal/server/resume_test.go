package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"hcrowd/internal/pipeline"
)

// TestSessionCheckpointResume restarts a labeling job: the first session
// spends half the budget, its warm checkpoint round-trips through the
// JSON serialization, and a resumed session spends the rest without
// re-asking anything already answered.
func TestSessionCheckpointResume(t *testing.T) {
	ctx := context.Background()
	ds := testDataset(t)
	s1, err := NewSession(ctx, ds, pipeline.Config{K: 1, Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	clientErr := make(chan error, 1)
	go func() { clientErr <- answerAll(s1, ds) }()
	res1, err := s1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-clientErr; err != nil {
		t.Fatal(err)
	}
	ck := s1.Checkpoint()
	if ck == nil {
		t.Fatal("finished session has no checkpoint")
	}
	if ck.BudgetSpent != res1.BudgetSpent {
		t.Fatalf("checkpoint spend %v, result spend %v", ck.BudgetSpent, res1.BudgetSpent)
	}
	if ck.Selection == nil {
		t.Fatal("checkpoint carries no selection cache — resume would run cold")
	}
	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ck2, err := pipeline.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	s2, err := NewSessionResume(ctx, ds, pipeline.Config{K: 1, Budget: 16}, ck2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	go func() { clientErr <- answerAll(s2, ds) }()
	res2, err := s2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-clientErr; err != nil {
		t.Fatal(err)
	}
	if res2.BudgetSpent != 16 {
		t.Errorf("resumed session spent %v total, want 16", res2.BudgetSpent)
	}
	if res2.Quality < res1.Quality {
		t.Errorf("quality regressed across resume: %v -> %v", res1.Quality, res2.Quality)
	}

	if _, err := NewSessionResume(ctx, ds, pipeline.Config{K: 1, Budget: 16}, nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
}

// TestHTTPCheckpointEndpoint: 204 before the first round completes, a
// loadable checkpoint afterwards.
func TestHTTPCheckpointEndpoint(t *testing.T) {
	ctx := context.Background()
	ds := testDataset(t)
	s, err := NewSession(ctx, ds, pipeline.Config{K: 1, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("/checkpoint before any round = %d, want 204", resp.StatusCode)
	}

	clientErr := make(chan error, 1)
	go func() { clientErr <- answerAll(s, ds) }()
	if _, err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-clientErr; err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/checkpoint after completion = %d", resp.StatusCode)
	}
	ck, err := pipeline.ReadCheckpoint(resp.Body)
	if err != nil {
		t.Fatalf("served checkpoint does not load: %v", err)
	}
	if ck.Version != pipeline.CheckpointVersion || len(ck.Beliefs) != len(ds.Tasks) {
		t.Errorf("served checkpoint malformed: version %d, %d beliefs", ck.Version, len(ck.Beliefs))
	}
}
