package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hcrowd/internal/dataset"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
)

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultSentiConfig()
	cfg.NumTasks = 8
	ds, err := dataset.SentiLike(rngutil.New(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func newTestSession(t *testing.T, budget float64) *Session {
	t.Helper()
	ds := testDataset(t)
	s, err := NewSession(context.Background(), ds, pipeline.Config{K: 1, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// answerAll drives the session to completion with perfect answers; it
// returns an error instead of failing the test because it runs in a
// separate goroutine.
func answerAll(s *Session, ds *dataset.Dataset) error {
	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-s.finished:
			return nil
		case <-deadline:
			return fmt.Errorf("session did not finish")
		default:
		}
		progressed := false
		for _, id := range s.Experts() {
			round, facts, ok := s.Queries(id)
			if !ok {
				continue
			}
			values := make([]bool, len(facts))
			for i, f := range facts {
				values[i] = ds.Truth[f]
			}
			if err := s.Answer(round, id, values); err != nil {
				return err
			}
			progressed = true
		}
		if !progressed {
			time.Sleep(time.Millisecond)
		}
	}
}

func TestSessionEndToEnd(t *testing.T) {
	ds := testDataset(t)
	s, err := NewSession(context.Background(), ds, pipeline.Config{K: 1, Budget: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	clientErr := make(chan error, 1)
	go func() { clientErr <- answerAll(s, ds) }()
	res, err := s.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-clientErr; err != nil {
		t.Fatal(err)
	}
	if res.BudgetSpent != 20 {
		t.Errorf("budget spent %v, want 20", res.BudgetSpent)
	}
	if res.Quality <= res.InitQuality {
		t.Errorf("quality did not improve: %v -> %v", res.InitQuality, res.Quality)
	}
	st := s.Status()
	if !st.Done || st.Rounds == 0 || st.Accuracy == nil {
		t.Errorf("status after completion: %+v", st)
	}
}

func TestSessionQueriesLifecycle(t *testing.T) {
	s := newTestSession(t, 4)
	expert := s.Experts()[0]
	// Wait for the first round to be published.
	var round int
	var facts []int
	ok := false
	for i := 0; i < 1000 && !ok; i++ {
		round, facts, ok = s.Queries(expert)
		time.Sleep(time.Millisecond)
	}
	if !ok {
		t.Fatal("no round published")
	}
	if len(facts) != 1 {
		t.Fatalf("facts = %v, want 1 (k=1)", facts)
	}
	// Non-expert and unknown workers see nothing.
	if _, _, ok := s.Queries("p0"); ok {
		t.Error("preliminary worker offered queries")
	}
	if _, _, ok := s.Queries("ghost"); ok {
		t.Error("unknown worker offered queries")
	}
	// Answer, then the same worker must not see the round again.
	if err := s.Answer(round, expert, []bool{true}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Queries(expert); ok {
		t.Error("answered worker still offered the round")
	}
}

func TestSessionAnswerValidation(t *testing.T) {
	s := newTestSession(t, 4)
	expert := s.Experts()[0]
	var round int
	ok := false
	for i := 0; i < 1000 && !ok; i++ {
		round, _, ok = s.Queries(expert)
		time.Sleep(time.Millisecond)
	}
	if !ok {
		t.Fatal("no round published")
	}
	if err := s.Answer(round+5, expert, []bool{true}); err == nil {
		t.Error("wrong round accepted")
	}
	if err := s.Answer(round, "ghost", []bool{true}); err == nil {
		t.Error("unknown worker accepted")
	}
	if err := s.Answer(round, expert, []bool{true, false}); err == nil {
		t.Error("wrong answer arity accepted")
	}
	if err := s.Answer(round, expert, []bool{true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Answer(round, expert, []bool{false}); err == nil {
		t.Error("duplicate answer accepted")
	}
}

func TestSessionCloseUnblocks(t *testing.T) {
	s := newTestSession(t, 100)
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := s.Wait(ctx); err == nil {
		t.Error("cancelled session reported success")
	}
	if err := s.Answer(1, s.Experts()[0], []bool{true}); err == nil {
		t.Error("closed session accepted answers")
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	ds := testDataset(t)
	s, err := NewSession(context.Background(), ds, pipeline.Config{K: 2, Budget: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	get := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if v != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	var experts struct {
		Experts []string `json:"experts"`
	}
	if code := get("/experts", &experts); code != http.StatusOK {
		t.Fatalf("/experts = %d", code)
	}
	if len(experts.Experts) == 0 {
		t.Fatal("no experts listed")
	}

	// Labels are unavailable while running.
	if code := get("/labels", nil); code != http.StatusConflict {
		t.Errorf("/labels while running = %d, want 409", code)
	}

	// Drive the session over HTTP until done.
	deadline := time.After(10 * time.Second)
	for {
		var st Status
		if code := get("/status", &st); code != http.StatusOK {
			t.Fatalf("/status = %d", code)
		}
		if st.Done {
			break
		}
		select {
		case <-deadline:
			t.Fatal("HTTP session did not finish")
		default:
		}
		for _, id := range experts.Experts {
			var q struct {
				Round int   `json:"round"`
				Facts []int `json:"facts"`
			}
			code := get("/queries?worker="+id, &q)
			if code == http.StatusNoContent {
				continue
			}
			if code != http.StatusOK {
				t.Fatalf("/queries = %d", code)
			}
			values := make([]bool, len(q.Facts))
			for i, f := range q.Facts {
				values[i] = ds.Truth[f]
			}
			body, _ := json.Marshal(map[string]any{
				"round": q.Round, "worker": id, "values": values,
			})
			resp, err := http.Post(srv.URL+"/answers", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("/answers = %d", resp.StatusCode)
			}
		}
	}

	var labels struct {
		Labels []bool `json:"labels"`
	}
	if code := get("/labels", &labels); code != http.StatusOK {
		t.Fatalf("/labels = %d", code)
	}
	if len(labels.Labels) != ds.NumFacts() {
		t.Fatalf("labels = %d, want %d", len(labels.Labels), ds.NumFacts())
	}
}

func TestHTTPErrors(t *testing.T) {
	s := newTestSession(t, 4)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/queries without worker = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/answers", "application/json", bytes.NewBufferString("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad answers payload = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/answers", "application/json",
		bytes.NewBufferString(`{"round": 99, "worker": "ghost", "values": [true]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("invalid answer = %d", resp.StatusCode)
	}
}

func TestNewSessionValidation(t *testing.T) {
	ds := testDataset(t)
	broken := *ds
	broken.Theta = 0.999 // no experts
	if _, err := NewSession(context.Background(), &broken, pipeline.Config{K: 1, Budget: 4}); err == nil {
		t.Error("no-expert dataset accepted")
	}
}

func TestSessionExpertsStable(t *testing.T) {
	s := newTestSession(t, 4)
	a := s.Experts()
	b := s.Experts()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("Experts() unstable")
	}
}

func TestRoundTimeoutProceedsWithPartialAnswers(t *testing.T) {
	ds := testDataset(t)
	s, err := NewSessionTimeout(context.Background(), ds,
		pipeline.Config{K: 1, Budget: 6}, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Only the first expert ever answers; the second is absent. The
	// timeout must move every round forward on the single answer.
	active := s.Experts()[0]
	deadline := time.After(15 * time.Second)
	for {
		select {
		case <-s.finished:
			res, err := s.Wait(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			// Budget charged for answers actually received: one expert,
			// k=1 → one unit per round.
			if res.BudgetSpent != float64(len(res.Rounds)) {
				t.Errorf("spent %v over %d rounds, want 1 per round",
					res.BudgetSpent, len(res.Rounds))
			}
			if res.Quality <= res.InitQuality {
				t.Error("partial rounds did not improve quality")
			}
			return
		case <-deadline:
			t.Fatal("session with absent expert did not finish")
		default:
		}
		if round, facts, ok := s.Queries(active); ok {
			values := make([]bool, len(facts))
			for i, f := range facts {
				values[i] = ds.Truth[f]
			}
			if err := s.Answer(round, active, values); err != nil {
				// The round may have just expired; keep going.
				continue
			}
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRoundTimeoutKeepsEmptyRoundOpen(t *testing.T) {
	ds := testDataset(t)
	s, err := NewSessionTimeout(context.Background(), ds,
		pipeline.Config{K: 1, Budget: 4}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Nobody answers: after several timeout periods the session must
	// still be running with an open round (not crashed, not done).
	time.Sleep(150 * time.Millisecond)
	st := s.Status()
	if st.Done {
		t.Fatalf("session ended without any answers: %+v", st)
	}
	if st.OpenRound == 0 {
		t.Error("no open round while waiting")
	}
}
