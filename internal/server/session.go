// Package server exposes the hierarchical crowdsourcing loop as a
// long-running labeling service: the pipeline selects checking queries,
// the server publishes them to expert clients over HTTP, collects their
// answers, feeds them back into the Bayesian update, and reports
// progress and final labels. It is the online counterpart of the
// simulated-answer experiments — the paper's framework as a deployable
// system.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"hcrowd/internal/crowd"
	"hcrowd/internal/dataset"
	"hcrowd/internal/pipeline"
)

// ErrClosed is returned when answering a session that already finished.
var ErrClosed = errors.New("server: session closed")

// ErrDraining is returned when answering a session that is draining: the
// service is shutting down gracefully, no new answers are admitted, and
// the session's progress through its last completed round is about to be
// checkpointed. HTTP maps it to 503 so clients know to stop rather than
// re-poll.
var ErrDraining = errors.New("server: session draining")

// ErrRoundClosed is returned when answering a round that already
// completed (full panel or timeout) but has not yet been replaced by the
// next round. The answer is NOT recorded: the completed round's family
// is what the pipeline consumes, and admitting stragglers would make the
// consumed family — and every downstream belief — depend on goroutine
// scheduling. HTTP maps it to 409; clients should re-poll for the next
// round.
var ErrRoundClosed = errors.New("server: round closed")

// ErrNotStreaming is returned when admitting tasks into a session that
// was not created with a budget window: a closed-loop session's engine
// never polls for admissions, so accepted fragments would sit in the
// queue forever. HTTP maps it to 409.
var ErrNotStreaming = errors.New("server: session is not streaming (no budget window)")

// ErrStreamEnded is returned when admitting tasks after a final
// admission closed the stream. HTTP maps it to 409.
var ErrStreamEnded = errors.New("server: admission stream already ended")

// ErrBadFragment wraps fragment validation failures on the admission
// path. HTTP maps it to 422: the request was well-formed JSON but the
// fragment itself is unusable (inconsistent structure, or answers from
// workers that are not the dataset's preliminary crowd).
var ErrBadFragment = errors.New("server: invalid fragment")

// pendingRound is one published query set awaiting expert answers.
type pendingRound struct {
	id       int
	facts    []int                      // global fact indices
	panel    crowd.Crowd                // the experts this round awaits
	answers  map[string]crowd.AnswerSet // keyed by worker ID
	done     chan struct{}              // closed when the round completes
	complete bool                       // guards double-close of done
}

// Session runs one labeling job: the pipeline loop executes in a
// background goroutine and blocks inside the queue source whenever it
// needs expert answers.
type Session struct {
	ds      *dataset.Dataset
	experts crowd.Crowd

	mu       sync.Mutex
	pending  *pendingRound    //hclint:guardedby mu
	nextID   int              //hclint:guardedby mu
	result   *pipeline.Result //hclint:guardedby mu
	runErr   error            //hclint:guardedby mu
	closed   bool             //hclint:guardedby mu
	draining bool             //hclint:guardedby mu
	// checkpoint is the latest warm checkpoint the loop emitted (one per
	// completed round); nil until the first round finishes.
	checkpoint *pipeline.Checkpoint //hclint:guardedby mu

	// journal, when non-nil, makes the session durable: accepted answers
	// and sealed rounds are fsynced before they are acknowledged, and
	// every engine round commits its checkpoint to the log. jerr is the
	// sticky first journal failure — once set, the session stops
	// accepting answers and the engine aborts with it (a session that
	// cannot persist its history must not keep collecting it).
	journal *sessionJournal
	jerr    error //hclint:guardedby mu
	// replay is the journaled round suffix a recovered session still owes
	// the engine: publish pops it, validates the engine re-planned the
	// identical round, and injects the journaled answers before going
	// live. costAware selects the cost-aware engine flavor.
	replay    []*replayRound //hclint:guardedby mu
	costAware bool

	// Streaming admission (enabled when the config carries a budget
	// window): AdmitTasks journals and queues fragments, the engine's
	// admission source drains the queue at round boundaries. admitCh is
	// replaced and closed under mu to wake a parked engine; waiters
	// capture it under mu and block on the captured copy.
	admitEnabled bool          //hclint:guardedby mu
	admitQueue   []stagedAdmit //hclint:guardedby mu
	// admitSeq is the last journaled admission sequence number,
	// appliedSeq the highest sequence handed to the engine, admitFrags
	// the count of fragments accepted (streaming Status), admitWaiting
	// whether the engine is parked in Poll awaiting fragments.
	admitSeq      int             //hclint:guardedby mu
	appliedSeq    int             //hclint:guardedby mu
	admitFrags    int             //hclint:guardedby mu
	admitFinal    bool            //hclint:guardedby mu
	admitWaiting  bool            //hclint:guardedby mu
	admitCh       chan struct{}   //hclint:guardedby mu
	prelimWorkers map[string]bool // accept-time validation snapshot; immutable after construction

	finished chan struct{}
	cancel   context.CancelFunc

	// roundTimeout, when positive, closes a round with the answers
	// received so far once the deadline passes (at least one answer is
	// required — an entirely silent panel keeps the round open). It
	// prevents a single absent expert from deadlocking the session.
	roundTimeout time.Duration

	// metrics is always non-nil (auto-created when the options carry
	// none); logger may be nil (no round-transition logging).
	metrics *Metrics
	logger  *log.Logger
}

// SessionOptions bundles the optional knobs of a session.
type SessionOptions struct {
	// RoundTimeout closes a round with the partial answers collected once
	// the deadline passes; 0 waits for the full panel forever.
	RoundTimeout time.Duration
	// Checkpoint, when non-nil, resumes the job from a warm checkpoint
	// instead of starting fresh.
	Checkpoint *pipeline.Checkpoint
	// Metrics receives the session's instrumentation; nil auto-creates a
	// bundle (reachable via Session.Metrics).
	Metrics *Metrics
	// Logger, when non-nil, receives round-transition log lines
	// (published / completed / expired / rejected stragglers).
	Logger *log.Logger
	// Gate, when non-nil, is acquired before the pipeline engine starts
	// and released when it returns. It is how a session manager bounds the
	// number of simultaneously running engines: a gated session sits
	// queued (publishing no rounds) until the gate admits it. An Acquire
	// error (the gate rejected the session, or ctx ended) finishes the
	// session with that error without running the engine.
	Gate func(ctx context.Context) (release func(), err error)
	// CostAware runs the cost-aware checking loop (per-worker answer
	// prices drive the assignment; see pipeline.RunCostAware) instead of
	// the uniform one. The cfg passed to the constructor must then carry
	// the Cost function.
	CostAware bool

	// Journal-backed operation; wired by the Manager (Create attaches a
	// fresh journal when journalReq carries the creation payload, Recover
	// supplies a reopened journal plus the replay suffix and the restored
	// round counter).
	journal    *sessionJournal
	replay     []*replayRound
	nextRound  int
	journalReq *CreateSessionRequest

	// Recovered streaming-admission state (wired by Manager.Recover):
	// the staged fragments not yet folded into the engine, the last
	// journaled sequence, the sequence already folded into the
	// checkpoint, and whether the stream was finalized.
	pendingAdmits []stagedAdmit
	admitSeq      int
	appliedSeq    int
	admitFrags    int
	admitFinal    bool
}

// stagedAdmit is one queued admission: a fragment under its journaled
// sequence number, awaiting the engine's next round boundary.
type stagedAdmit struct {
	seq int
	fr  *dataset.Fragment
}

// NewSession starts the pipeline on ds with cfg; cfg.Source is replaced
// by the session's answer queue. The loop runs until the budget is
// exhausted, the context is cancelled, or Close is called.
func NewSession(ctx context.Context, ds *dataset.Dataset, cfg pipeline.Config) (*Session, error) {
	return NewSessionTimeout(ctx, ds, cfg, 0)
}

// NewSessionTimeout is NewSession with a per-round timeout: a round that
// has collected at least one answer when the deadline passes proceeds
// with that partial family (the budget is charged only for answers
// actually received).
func NewSessionTimeout(ctx context.Context, ds *dataset.Dataset, cfg pipeline.Config, roundTimeout time.Duration) (*Session, error) {
	return NewSessionOpts(ctx, ds, cfg, SessionOptions{RoundTimeout: roundTimeout})
}

// NewSessionResume starts a session from a pipeline checkpoint (see
// Session.Checkpoint and pipeline.ReadCheckpoint): the loop continues
// with the checkpointed beliefs, spend, stop votes and — when present —
// the selection cache, so no unchanged task is re-scanned. cfg.Budget is
// the job's total budget, of which the checkpoint's spend is consumed.
func NewSessionResume(ctx context.Context, ds *dataset.Dataset, cfg pipeline.Config, c *pipeline.Checkpoint) (*Session, error) {
	return NewSessionResumeTimeout(ctx, ds, cfg, c, 0)
}

// NewSessionResumeTimeout is NewSessionResume with a per-round timeout.
func NewSessionResumeTimeout(ctx context.Context, ds *dataset.Dataset, cfg pipeline.Config, c *pipeline.Checkpoint, roundTimeout time.Duration) (*Session, error) {
	if c == nil {
		return nil, errors.New("server: nil checkpoint")
	}
	return NewSessionOpts(ctx, ds, cfg, SessionOptions{RoundTimeout: roundTimeout, Checkpoint: c})
}

// NewSessionOpts is the general constructor; the fixed-signature
// constructors above delegate here. opts.Checkpoint non-nil resumes
// instead of starting fresh.
func NewSessionOpts(ctx context.Context, ds *dataset.Dataset, cfg pipeline.Config, opts SessionOptions) (*Session, error) {
	c := opts.Checkpoint
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	ce, _ := ds.Split()
	if len(ce) == 0 {
		return nil, errors.New("server: no expert workers above theta")
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = NewMetrics()
	}
	runCtx, cancel := context.WithCancel(ctx)
	s := &Session{
		ds:           ds,
		experts:      ce,
		nextID:       opts.nextRound,
		finished:     make(chan struct{}),
		cancel:       cancel,
		roundTimeout: opts.RoundTimeout,
		checkpoint:   c,
		journal:      opts.journal,
		replay:       opts.replay,
		costAware:    opts.CostAware,
		metrics:      metrics,
		logger:       opts.Logger,
	}
	cfg.Source = queueSource{s: s, ctx: runCtx}
	if cfg.BudgetWindow > 0 {
		// Streaming session: the engine polls the admission queue at every
		// round boundary and parks on it when the budget runs dry, instead
		// of ending the run. The preliminary-worker snapshot validates
		// fragments at accept time without touching the dataset the engine
		// goroutine is mutating.
		s.admitEnabled = true
		s.admitCh = make(chan struct{})
		s.admitQueue = opts.pendingAdmits
		s.admitSeq = opts.admitSeq
		s.appliedSeq = opts.appliedSeq
		s.admitFinal = opts.admitFinal
		s.admitFrags = opts.admitFrags
		s.prelimWorkers = make(map[string]bool, ds.Prelim.NumWorkers())
		for _, id := range ds.Prelim.WorkerIDs() {
			s.prelimWorkers[id] = true
		}
		cfg.Admit = sessionAdmit{s: s}
	}
	if s.journal != nil {
		// Commit every engine round to the journal — with the server's
		// round counter, so recovery restores ID monotonicity — before the
		// advisory OnCheckpoint hook runs. The counter is read under s.mu;
		// the append itself runs under the journal's own lock (Session.mu
		// is never held across journal I/O from this path).
		cfg.Journal = pipeline.RoundRecorderFunc(func(round int, ck *pipeline.Checkpoint) error {
			s.mu.Lock()
			next := s.nextID
			applied := s.appliedSeq
			s.mu.Unlock()
			return s.journal.commitRound(next, applied, ck)
		})
	}
	// The session's bundle taps the pipeline's per-round metrics; a
	// caller-provided sink still receives every record.
	if cfg.Metrics != nil {
		cfg.Metrics = pipeline.MultiMetrics{metrics, cfg.Metrics}
	} else {
		cfg.Metrics = metrics
	}
	// Capture every round's warm checkpoint so clients can persist the
	// session's progress (GET /checkpoint) and resume after a restart;
	// a caller-provided hook still runs.
	userHook := cfg.OnCheckpoint
	cfg.OnCheckpoint = func(ck *pipeline.Checkpoint) {
		s.mu.Lock()
		s.checkpoint = ck
		s.mu.Unlock()
		if userHook != nil {
			userHook(ck)
		}
	}
	go func() {
		defer close(s.finished)
		if opts.Gate != nil {
			release, err := opts.Gate(runCtx)
			if err != nil {
				s.mu.Lock()
				defer s.mu.Unlock()
				s.runErr = err
				s.closed = true
				return
			}
			defer release()
		}
		var res *pipeline.Result
		var err error
		switch {
		case s.costAware && c != nil:
			res, err = pipeline.ResumeCostAware(runCtx, ds, cfg, c)
		case s.costAware:
			res, err = pipeline.RunCostAware(runCtx, ds, cfg)
		case c != nil:
			res, err = pipeline.Resume(runCtx, ds, cfg, c)
		default:
			res, err = pipeline.Run(runCtx, ds, cfg)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if err == nil && len(s.replay) > 0 {
			// The journal promised more rounds than the rebuilt engine ran:
			// the recovery does not reproduce the interrupted run, and
			// trusting its labels would silently drop acknowledged answers.
			err = fmt.Errorf("server: recovery diverged: engine finished with %d journaled rounds unconsumed", len(s.replay))
			res = nil
		}
		s.result = res
		s.runErr = err
		s.closed = true
		if s.pending != nil {
			// Unblock any handler waiting on a round that will never
			// complete.
			s.pending = nil
		}
	}()
	return s, nil
}

// Metrics returns the session's instrument bundle (never nil); serve
// Metrics().Handler() at GET /metrics — the session's Handler already
// does.
func (s *Session) Metrics() *Metrics { return s.metrics }

// logf emits a round-transition line when a logger is configured.
func (s *Session) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// rejectAnswer counts a rejected answer under its reason and returns err.
func (s *Session) rejectAnswer(reason string, err error) error {
	s.metrics.answersRejected.With(reason).Inc()
	return err
}

// Checkpoint returns the latest warm checkpoint the loop produced, or nil
// before the first round completes. The value is immutable once emitted —
// the loop clones its state into each checkpoint — so callers may
// serialize it without holding any lock.
func (s *Session) Checkpoint() *pipeline.Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpoint
}

// queueSource adapts the session's answer queue to pipeline.AnswerSource.
type queueSource struct {
	s   *Session
	ctx context.Context
}

// Answers implements pipeline.AnswerSource: publish the queries to the
// round's panel (the experts the engine selected — the full expert set
// in the uniform loop, an assignment in the cost-aware one) and block
// until the round completes or the session ends.
func (q queueSource) Answers(experts crowd.Crowd, facts []int) (crowd.AnswerFamily, error) {
	round, err := q.s.publish(experts, facts)
	if err != nil {
		return nil, err
	}
	select {
	case <-round.done:
	case <-q.ctx.Done():
		return nil, q.ctx.Err()
	}
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	if q.s.jerr != nil {
		return nil, q.s.jerr
	}
	fam := make(crowd.AnswerFamily, 0, len(round.panel))
	for _, w := range round.panel {
		if as, ok := round.answers[w.ID]; ok {
			fam = append(fam, as)
		}
	}
	if len(fam) == 0 {
		return nil, fmt.Errorf("server: round %d completed with no answers", round.id)
	}
	q.s.pending = nil
	return fam, nil
}

// sessionAdmit adapts the session's admission queue to
// pipeline.AdmissionSource: the engine drains staged fragments at round
// boundaries and, when idle, parks on the admission channel until
// AdmitTasks wakes it (or the stream ends, or the session drains).
type sessionAdmit struct {
	s *Session
}

// Poll implements pipeline.AdmissionSource. During recovery replay the
// drain is capped at the next journaled round's admission sequence, so
// the engine re-plans every replayed round over exactly the dataset it
// was originally planned on.
func (a sessionAdmit) Poll(ctx context.Context, wait bool) ([]*dataset.Fragment, error) {
	s := a.s
	s.mu.Lock()
	for {
		if s.jerr != nil {
			err := s.jerr
			s.mu.Unlock()
			return nil, err
		}
		limit := int(^uint(0) >> 1) // MaxInt: no replay cap
		if len(s.replay) > 0 {
			limit = s.replay[0].AdmitSeq
		}
		n := 0
		for _, st := range s.admitQueue {
			if st.seq > limit {
				break
			}
			n++
		}
		if n > 0 {
			frags := make([]*dataset.Fragment, n)
			for i, st := range s.admitQueue[:n] {
				frags[i] = st.fr
			}
			s.appliedSeq = s.admitQueue[n-1].seq
			s.admitQueue = s.admitQueue[n:]
			s.mu.Unlock()
			return frags, nil
		}
		if !wait {
			s.mu.Unlock()
			return nil, nil
		}
		if s.admitFinal || s.draining || s.closed {
			// Stream over (finalized, draining, or the session ended):
			// report exhaustion so the engine finishes the run.
			s.mu.Unlock()
			return nil, nil
		}
		if len(s.replay) > 0 {
			// The engine ran dry with journaled rounds still unconsumed and
			// no admission it may fold before them: the journal promises
			// rounds this rebuild cannot re-plan.
			err := fmt.Errorf("server: recovery diverged: engine idle awaiting admissions with %d journaled rounds unconsumed", len(s.replay))
			s.mu.Unlock()
			return nil, err
		}
		ch := s.admitCh
		s.admitWaiting = true
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			s.mu.Lock()
			s.admitWaiting = false
			s.mu.Unlock()
			return nil, ctx.Err()
		}
		s.mu.Lock()
		s.admitWaiting = false
	}
}

// admitParked reports whether the engine is parked in the admission
// source awaiting new fragments — the quiescent point streaming drivers
// (and tests) key admissions on.
func (s *Session) admitParked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitWaiting
}

// wakeAdmitLocked rouses an engine parked in sessionAdmit.Poll by
// rotating the admission channel. Callers hold s.mu.
func (s *Session) wakeAdmitLocked() {
	if s.admitCh != nil {
		close(s.admitCh)
		s.admitCh = make(chan struct{})
	}
}

// AdmitTasks stages a batch of fragments for the engine's next round
// boundary: each fragment is validated (structure plus answer-worker
// membership in the dataset's preliminary crowd), journaled, and queued;
// final marks the end of the admission stream, after which the engine
// finishes the run once the queue drains instead of parking for more.
// AdmitTasks(nil, true) closes the stream without admitting anything.
// The batch is atomic: it is fully validated before anything is
// journaled, and one fsync — on the batch's last record — covers it all.
func (s *Session) AdmitTasks(frs []*dataset.Fragment, final bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.draining {
		return ErrDraining
	}
	if !s.admitEnabled {
		return ErrNotStreaming
	}
	if s.admitFinal {
		return ErrStreamEnded
	}
	if s.jerr != nil {
		return s.jerr
	}
	if len(frs) == 0 && !final {
		return fmt.Errorf("%w: empty batch without final", ErrBadFragment)
	}
	for i, fr := range frs {
		if fr == nil {
			return fmt.Errorf("%w: fragment %d is null", ErrBadFragment, i)
		}
		if err := fr.Validate(); err != nil {
			return fmt.Errorf("%w: fragment %d: %v", ErrBadFragment, i, err)
		}
		for _, ans := range fr.Answers {
			if !s.prelimWorkers[ans.Worker] {
				return fmt.Errorf("%w: fragment %d: answer from %q, not a preliminary worker", ErrBadFragment, i, ans.Worker)
			}
		}
	}
	if s.journal != nil {
		// Durability before acknowledgement, like Answer: every fragment
		// gets its own record (so recovery replays admissions in order),
		// but only the batch's last record forces the fsync.
		for i, fr := range frs {
			last := i == len(frs)-1
			if err := s.journal.taskAdmitted(s.admitSeq+i+1, final && last, fr, last); err != nil {
				s.journalFailLocked(err)
				return s.jerr
			}
		}
		if len(frs) == 0 {
			// Final-only close: a fragment-less record carries the flag.
			if err := s.journal.taskAdmitted(s.admitSeq+1, true, nil, true); err != nil {
				s.journalFailLocked(err)
				return s.jerr
			}
		}
	}
	for _, fr := range frs {
		s.admitSeq++
		s.admitQueue = append(s.admitQueue, stagedAdmit{seq: s.admitSeq, fr: fr})
		s.admitFrags++
	}
	if len(frs) == 0 {
		s.admitSeq++ // the fragment-less final record still consumes a sequence number
	}
	if final {
		s.admitFinal = true
	}
	s.metrics.tasksAdmitted.Add(float64(len(frs)))
	s.wakeAdmitLocked()
	s.logf("admitted %d fragment(s), final=%v (seq %d)", len(frs), final, s.admitSeq)
	return nil
}

// panelIDs lists a panel's worker IDs in panel order.
func panelIDs(panel crowd.Crowd) []string {
	ids := make([]string, len(panel))
	for i, w := range panel {
		ids[i] = w.ID
	}
	return ids
}

// publish installs a new pending round — or, while a recovered session
// still owes the engine journaled rounds, validates and replays the next
// one instead of going live.
func (s *Session) publish(panel crowd.Crowd, facts []int) (*pendingRound, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sorted := append([]int{}, facts...)
	sort.Ints(sorted)
	if len(s.replay) > 0 {
		return s.replayRoundLocked(panel, sorted)
	}
	if s.jerr != nil {
		return nil, s.jerr
	}
	s.nextID++
	round := &pendingRound{
		id:      s.nextID,
		facts:   sorted,
		panel:   panel,
		answers: make(map[string]crowd.AnswerSet, len(panel)),
		done:    make(chan struct{}),
	}
	if s.journal != nil {
		// Appended but not synced: a torn round-open record just re-plans
		// deterministically at recovery, and any later answer's fsync
		// carries it to disk first (appends are ordered).
		if err := s.journal.roundOpened(round.id, sorted, panelIDs(panel), s.appliedSeq); err != nil {
			s.journalFailLocked(err)
			return nil, s.jerr
		}
	}
	s.pending = round
	if s.roundTimeout > 0 {
		time.AfterFunc(s.roundTimeout, func() { s.expireRound(round) })
	}
	s.metrics.roundsPublished.Inc()
	s.logf("round %d published: %d facts, awaiting %d experts", round.id, len(sorted), len(panel))
	return round, nil
}

// replayRoundLocked republishes the next journaled round during
// recovery: the engine's re-planned round must match the journal
// byte-for-byte (same facts, same panel — the engine is deterministic,
// so anything else means the journal and the code disagree and the
// session must fail rather than relabel), and the journaled answers are
// injected through the same AnswerSet validation live answers get,
// without being re-journaled.
func (s *Session) replayRoundLocked(panel crowd.Crowd, sortedFacts []int) (*pendingRound, error) {
	rr := s.replay[0]
	s.replay = s.replay[1:]
	if !equalInts(sortedFacts, rr.Facts) || !equalStrings(panelIDs(panel), rr.Panel) {
		return nil, fmt.Errorf("server: recovery diverged: engine re-planned round %d with different facts or panel than journaled", rr.Round)
	}
	if rr.AdmitSeq != s.appliedSeq {
		// The journal says this round was planned over the dataset as of
		// admission rr.AdmitSeq, but the rebuilt engine folded a different
		// prefix — the round's facts could only match by coincidence.
		return nil, fmt.Errorf("server: recovery diverged: round %d journaled at admission seq %d, engine replayed it at %d", rr.Round, rr.AdmitSeq, s.appliedSeq)
	}
	s.nextID = rr.Round
	round := &pendingRound{
		id:      rr.Round,
		facts:   sortedFacts,
		panel:   panel,
		answers: make(map[string]crowd.AnswerSet, len(panel)),
		done:    make(chan struct{}),
	}
	for _, a := range rr.Answers {
		w, ok := panel.ByID(a.Worker)
		if !ok {
			return nil, fmt.Errorf("server: recovery diverged: journaled answer from %s, not on round %d's panel", a.Worker, rr.Round)
		}
		as := crowd.AnswerSet{
			Worker: w,
			Facts:  append([]int{}, sortedFacts...),
			Values: append([]bool{}, a.Values...),
		}
		if err := as.Validate(); err != nil {
			return nil, fmt.Errorf("server: recovery: journaled answer from %s in round %d: %w", a.Worker, rr.Round, err)
		}
		round.answers[a.Worker] = as
	}
	if s.journal != nil {
		s.journal.ins.replayed.Add(float64(len(rr.Answers)))
	}
	s.pending = round
	if rr.Sealed {
		// Already sealed in the journal — complete it without journaling a
		// second seal record.
		round.complete = true
		close(round.done)
	} else if len(round.answers) == len(panel) {
		// Full panel but the seal record was lost in the crash; seal (and
		// journal) it now so the record grammar (no checkpoint over an open
		// round) holds for the next recovery.
		s.sealRoundLocked(round)
	} else if s.roundTimeout > 0 {
		time.AfterFunc(s.roundTimeout, func() { s.expireRound(round) })
	}
	s.logf("round %d replayed from journal: %d/%d answers, sealed=%v", rr.Round, len(round.answers), len(panel), round.complete)
	return round, nil
}

// equalInts reports whether two int slices are identical.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalStrings reports whether two string slices are identical.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// journalFailLocked records the first journal failure and fails the
// session: the error sticks, the open round is closed so the engine
// wakes, and queueSource surfaces the error to the engine, which aborts
// the run. Callers hold s.mu.
func (s *Session) journalFailLocked(err error) {
	if s.jerr != nil {
		return
	}
	s.jerr = fmt.Errorf("server: journal: %w", err)
	s.logf("journal failure, failing session: %v", err)
	if s.pending != nil && !s.pending.complete {
		s.pending.complete = true
		close(s.pending.done)
	}
}

// sealRoundLocked completes a round: the seal is journaled (fsynced)
// before the engine is woken, so a timeout-sealed partial round recovers
// as exactly that partial round. Idempotent — a round seals exactly once
// no matter how many paths race to it (full panel, timeout, replay), so
// the journal never carries a duplicate seal record and done is never
// double-closed. Callers hold s.mu and count their own metrics
// (completed vs expired).
func (s *Session) sealRoundLocked(round *pendingRound) {
	if round.complete {
		return
	}
	round.complete = true
	if s.journal != nil && s.jerr == nil {
		if err := s.journal.roundSealed(round.id, len(round.answers)); err != nil {
			s.journalFailLocked(err)
		}
	}
	close(round.done)
}

// expireRound closes a round at its deadline if it gathered at least one
// answer; an unanswered round stays open (and the timer re-arms) so the
// loop never consumes empty evidence.
func (s *Session) expireRound(round *pendingRound) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending != round || round.complete || s.closed {
		return
	}
	if len(round.answers) == 0 {
		time.AfterFunc(s.roundTimeout, func() { s.expireRound(round) })
		return
	}
	s.sealRoundLocked(round)
	s.metrics.roundsExpired.Inc()
	s.logf("round %d expired: proceeding with %d/%d answers", round.id, len(round.answers), len(round.panel))
}

// Queries returns the open round for the given expert: the round ID and
// the facts still needing the expert's answers. ok is false when there is
// no open round, the round already completed, the worker is not an
// expert, or the worker has already answered.
func (s *Session) Queries(workerID string) (roundID int, facts []int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil || s.closed || s.draining {
		return 0, nil, false
	}
	if s.pending.complete {
		// Between the round completing (full panel or timeout) and the
		// loop consuming it, the round is closed: advertising it would
		// solicit answers that Answer must reject.
		return 0, nil, false
	}
	if _, isExpert := s.experts.ByID(workerID); !isExpert {
		return 0, nil, false
	}
	if _, onPanel := s.pending.panel.ByID(workerID); !onPanel {
		return 0, nil, false
	}
	if _, answered := s.pending.answers[workerID]; answered {
		return 0, nil, false
	}
	return s.pending.id, append([]int{}, s.pending.facts...), true
}

// Answer records one expert's answers to the open round. The values must
// be parallel to the round's fact list (ascending global fact order). A
// round that already completed — by full panel or by timeout — rejects
// further answers with ErrRoundClosed: the completed family is what the
// pipeline consumes, and it must not depend on whether a straggler beat
// the loop to the lock.
func (s *Session) Answer(roundID int, workerID string, values []bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.rejectAnswer("session_closed", ErrClosed)
	}
	if s.draining {
		return s.rejectAnswer("draining", ErrDraining)
	}
	if s.pending == nil || s.pending.id != roundID {
		return s.rejectAnswer("not_open", fmt.Errorf("server: round %d is not open", roundID))
	}
	if s.pending.complete {
		s.logf("round %d rejected straggler answer from %s: round closed", roundID, workerID)
		return s.rejectAnswer("round_closed",
			fmt.Errorf("%w: round %d already completed", ErrRoundClosed, roundID))
	}
	w, isExpert := s.experts.ByID(workerID)
	if !isExpert {
		return s.rejectAnswer("not_expert", fmt.Errorf("server: %q is not an expert worker", workerID))
	}
	if _, onPanel := s.pending.panel.ByID(workerID); !onPanel {
		return s.rejectAnswer("not_panelist",
			fmt.Errorf("server: %s is not on round %d's panel", workerID, roundID))
	}
	if _, dup := s.pending.answers[workerID]; dup {
		return s.rejectAnswer("duplicate", fmt.Errorf("server: %s already answered round %d", workerID, roundID))
	}
	if len(values) != len(s.pending.facts) {
		return s.rejectAnswer("arity",
			fmt.Errorf("server: round %d needs %d answers, got %d", roundID, len(s.pending.facts), len(values)))
	}
	as := crowd.AnswerSet{
		Worker: w,
		Facts:  append([]int{}, s.pending.facts...),
		Values: append([]bool{}, values...),
	}
	if err := as.Validate(); err != nil {
		return s.rejectAnswer("invalid", err)
	}
	if s.journal != nil && s.jerr == nil {
		// Durability before acknowledgement: the answer is fsynced into
		// the journal before it is recorded or confirmed, so no accepted
		// answer can be lost to a crash.
		if err := s.journal.answerAccepted(roundID, workerID, values); err != nil {
			s.journalFailLocked(err)
			return s.rejectAnswer("journal", s.jerr)
		}
	}
	s.pending.answers[workerID] = as
	s.metrics.answersAccepted.Inc()
	if len(s.pending.answers) == len(s.pending.panel) {
		s.sealRoundLocked(s.pending)
		s.metrics.roundsCompleted.Inc()
		s.logf("round %d complete: all %d panelists answered", roundID, len(s.pending.panel))
	}
	return nil
}

// Status describes the session's progress.
type Status struct {
	Done        bool     `json:"done"`
	Draining    bool     `json:"draining,omitempty"`
	Rounds      int      `json:"rounds"`
	BudgetSpent float64  `json:"budget_spent"`
	Quality     float64  `json:"quality"`
	Accuracy    *float64 `json:"accuracy,omitempty"`
	OpenRound   int      `json:"open_round,omitempty"`
	OpenFacts   []int    `json:"open_facts,omitempty"`
	Error       string   `json:"error,omitempty"`
	// Streaming admission (sessions created with a budget window).
	Streaming         bool `json:"streaming,omitempty"`
	AdmittedFragments int  `json:"admitted_fragments,omitempty"`
	PendingFragments  int  `json:"pending_fragments,omitempty"`
	StreamEnded       bool `json:"stream_ended,omitempty"`
}

// Status reports progress; final numbers come from the pipeline result
// once the run ends.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{Done: s.closed, Draining: s.draining}
	if s.admitEnabled {
		st.Streaming = true
		st.AdmittedFragments = s.admitFrags
		st.PendingFragments = len(s.admitQueue)
		st.StreamEnded = s.admitFinal
	}
	if s.pending != nil {
		st.OpenRound = s.pending.id
		st.OpenFacts = append([]int{}, s.pending.facts...)
	}
	if s.result != nil {
		st.Rounds = len(s.result.Rounds)
		st.BudgetSpent = s.result.BudgetSpent
		st.Quality = s.result.Quality
		acc := s.result.Accuracy
		st.Accuracy = &acc
	}
	if s.runErr != nil {
		st.Error = s.runErr.Error()
	}
	return st
}

// Experts lists the expert worker IDs clients may answer as.
func (s *Session) Experts() []string {
	ids := make([]string, len(s.experts))
	for i, w := range s.experts {
		ids[i] = w.ID
	}
	return ids
}

// Wait blocks until the pipeline finishes and returns its result.
func (s *Session) Wait(ctx context.Context) (*pipeline.Result, error) {
	select {
	case <-s.finished:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.result, s.runErr
}

// Close cancels the run.
func (s *Session) Close() {
	s.cancel()
	<-s.finished
}

// beginDrain puts the session into graceful-shutdown mode: Answer
// rejects new answers with ErrDraining and Queries stops advertising the
// open round. A round that already completed (full panel or timeout) is
// still consumed by the engine — that is the progress Drain preserves.
// Idempotent.
func (s *Session) beginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		// A streaming engine may be parked awaiting admissions; wake it so
		// it observes the drain and finishes the run (its journal and
		// checkpoint survive for a later recovery to resume the stream).
		s.wakeAdmitLocked()
		s.logf("session draining: rejecting new answers")
	}
}

// engineParked reports whether the engine can make no further progress
// without answers that draining forbids: it finished, or it is blocked
// on a round that is not complete. Between a round completing and the
// engine consuming it (belief update, checkpoint emission, next publish)
// this is false — that window is exactly what Drain waits out.
func (s *Session) engineParked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || (s.pending != nil && !s.pending.complete)
}

// Drain gracefully stops the session: reject new answers, wait for the
// engine to consume any in-flight completed round (so its belief updates
// and checkpoint are not lost), then cancel the run. It returns the last
// warm checkpoint the engine emitted — after a clean drain that includes
// every completed round — or nil if no round ever completed. On ctx
// expiry the session is cancelled anyway and the checkpoint reflects
// whatever the engine had emitted by then.
//
// Progress granularity is the engine round: answers of a round that had
// not completed when the drain began are not applied (they were never
// part of a consumed family), and with per-round timeouts a partial
// round that would have expired later is cut at the drain instead.
func (s *Session) Drain(ctx context.Context) (*pipeline.Checkpoint, error) {
	s.beginDrain()
	var err error
	for !s.engineParked() {
		select {
		case <-s.finished:
		case <-ctx.Done():
			err = ctx.Err()
		case <-time.After(2 * time.Millisecond):
			continue
		}
		break
	}
	s.Close()
	return s.Checkpoint(), err
}
