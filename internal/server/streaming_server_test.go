package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hcrowd/internal/aggregate"
	"hcrowd/internal/dataset"
	"hcrowd/internal/journal"
	"hcrowd/internal/pipeline"
	"hcrowd/internal/rngutil"
)

// copyDataset deep-copies a dataset through its serialized form, so a
// session can mutate its own instance without aliasing the original.
func copyDataset(t *testing.T, ds *dataset.Dataset) *dataset.Dataset {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := dataset.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// streamFixture builds the shared material of the streaming tests: a
// base dataset, a deterministic fragment sequence, and a truth oracle —
// the base dataset with every fragment pre-admitted, so flipAnswers can
// resolve any global fact index a session will ever publish, no matter
// when that session folds the fragments in.
func streamFixture(t *testing.T, tasks int, seed int64, nFrags int) (ds *dataset.Dataset, frags []*dataset.Fragment, oracle *dataset.Dataset) {
	t.Helper()
	ds = sizedDataset(t, tasks, seed)
	rng := rngutil.New(seed + 100)
	cfg := dataset.DefaultSentiConfig()
	for i := 0; i < nFrags; i++ {
		fr, err := dataset.SentiFragment(rng, ds, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		frags = append(frags, fr)
	}
	oracle = copyDataset(t, ds)
	for _, fr := range frags {
		if _, _, err := oracle.Admit(fr); err != nil {
			t.Fatal(err)
		}
	}
	return ds, frags, oracle
}

// driveUntilParked answers rounds with the flip policy until the engine
// parks in the admission source awaiting fragments — the deterministic
// point both the reference and the journaled run key their admissions
// on, so the fold lands at the identical round boundary in every run.
func driveUntilParked(s *Session, oracle *dataset.Dataset) error {
	deadline := time.After(20 * time.Second)
	for {
		if s.admitParked() {
			return nil
		}
		select {
		case <-s.finished:
			return fmt.Errorf("session finished before parking for admissions")
		case <-deadline:
			return fmt.Errorf("session never parked awaiting admissions")
		default:
		}
		progressed := false
		for _, id := range s.Experts() {
			round, facts, ok := s.Queries(id)
			if !ok {
				continue
			}
			if err := s.Answer(round, id, flipAnswers(oracle, id, facts)); err != nil {
				return err
			}
			progressed = true
		}
		if !progressed {
			time.Sleep(time.Millisecond)
		}
	}
}

// streamingRecoverRoundTrip is the mid-stream kill-and-recover scenario
// for a streaming session: run the admission schedule uninterrupted as
// the reference, run the same schedule journaled but kill the service
// after the first admission mid-round, recover from the journal alone,
// finish the schedule, and demand byte-identical labels and final
// checkpoint. Both engine flavors run it in the -count=2 suite.
func streamingRecoverRoundTrip(t *testing.T, costAware bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ds, frags, oracle := streamFixture(t, 6, 61, 2)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	sc := SessionConfig{K: 1, Budget: 8, BudgetWindow: 6, Seed: 5}
	if costAware {
		sc.CostAware = true
		sc.CostModel = "accuracy"
	}

	// schedule drives one session through the full admission plan:
	// exhaust the budget, admit frags[0], exhaust again, admit frags[1]
	// with final, and let the run conclude.
	schedule := func(s *Session, fromStep int) error {
		if fromStep <= 0 {
			if err := driveUntilParked(s, oracle); err != nil {
				return err
			}
			if err := s.AdmitTasks(frags[:1], false); err != nil {
				return err
			}
		}
		if err := driveUntilParked(s, oracle); err != nil {
			return err
		}
		if err := s.AdmitTasks(frags[1:2], true); err != nil {
			return err
		}
		return driveFlip(s, oracle)
	}

	// Reference: the identical schedule, uninterrupted and unjournaled.
	agg, err := aggregate.ByName("EBCC", sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	refDS := copyDataset(t, ds)
	couple, err := refDS.EstimateCoupling()
	if err != nil {
		t.Fatal(err)
	}
	cost, err := CostModelByName(sc.CostModel)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := pipeline.Config{
		K: sc.K, Budget: sc.Budget, BudgetWindow: sc.BudgetWindow,
		Init: agg, PriorCoupling: couple, Cost: cost,
	}
	ref, err := NewSessionOpts(ctx, refDS, refCfg, SessionOptions{CostAware: costAware})
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule(ref, 0); err != nil {
		t.Fatalf("reference: %v", err)
	}
	refRes, err := ref.Wait(ctx)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	refCk := checkpointBytes(t, ref.Checkpoint())
	ref.Close()
	if refRes.TasksAdmitted == 0 {
		t.Fatal("reference run admitted no tasks; the schedule never streamed")
	}

	// Journaled run, killed mid-round after the first admission. Close
	// without Drain stands in for SIGKILL: only what each ack fsynced
	// survives. CompactEvery 2 makes at least one compaction carry the
	// admit records across a log rewrite.
	dir := t.TempDir()
	m1 := NewManager(ManagerOptions{JournalDir: dir, CompactEvery: 2})
	id, s1, err := m1.CreateFromRequest(CreateSessionRequest{
		Name: "stream-job", Dataset: dsBuf.Bytes(), Config: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := driveUntilParked(s1, oracle); err != nil {
		t.Fatalf("pre-admit drive: %v", err)
	}
	if err := s1.AdmitTasks(frags[:1], false); err != nil {
		t.Fatal(err)
	}
	if _, err := driveFlipN(s1, oracle, 2); err != nil {
		t.Fatalf("post-admit drive: %v", err)
	}
	s1.Close()

	// Restart: a fresh manager over the same journal dir, then finish
	// the remaining schedule.
	m2 := NewManager(ManagerOptions{JournalDir: dir, CompactEvery: 2})
	ids, err := m2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("recovered %v, want [%s]", ids, id)
	}
	s2, ok := m2.Get(id)
	if !ok {
		t.Fatal("recovered session not registered")
	}
	if err := schedule(s2, 1); err != nil {
		t.Fatalf("post-recovery schedule: %v", err)
	}
	res, err := s2.Wait(ctx)
	if err != nil {
		t.Fatalf("recovered run: %v", err)
	}

	gotLabels, _ := json.Marshal(res.Labels)
	wantLabels, _ := json.Marshal(refRes.Labels)
	if !bytes.Equal(gotLabels, wantLabels) {
		t.Errorf("recovered labels diverge from uninterrupted run\n got %s\nwant %s", gotLabels, wantLabels)
	}
	if res.BudgetSpent != refRes.BudgetSpent {
		t.Errorf("recovered spend %v, uninterrupted %v", res.BudgetSpent, refRes.BudgetSpent)
	}
	if gotCk := checkpointBytes(t, s2.Checkpoint()); !bytes.Equal(gotCk, refCk) {
		t.Errorf("recovered final checkpoint diverges from uninterrupted run\n got %s\nwant %s", gotCk, refCk)
	}
	if len(res.Labels) != oracle.NumFacts() {
		t.Errorf("recovered run labeled %d facts, want the grown %d", len(res.Labels), oracle.NumFacts())
	}
}

// TestStreamingRecoverUniformDeterministicGivenSeed proves the streaming
// determinism claim for the uniform loop: same seed, same admission
// schedule, killed and recovered mid-stream — byte-identical labels and
// final checkpoint. Runs in the -count=2 determinism suite.
func TestStreamingRecoverUniformDeterministicGivenSeed(t *testing.T) {
	streamingRecoverRoundTrip(t, false)
}

// TestStreamingRecoverCostAwareDeterministicGivenSeed is the same proof
// for the cost-aware loop.
func TestStreamingRecoverCostAwareDeterministicGivenSeed(t *testing.T) {
	streamingRecoverRoundTrip(t, true)
}

// TestAdmitTasksStateErrors pins the admission error taxonomy at the
// Session level: not streaming, stream ended, invalid fragments, and
// unknown answer workers.
func TestAdmitTasksStateErrors(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A closed-loop session (no budget window) refuses admissions.
	plain := newTestSession(t, 4)
	if err := plain.AdmitTasks([]*dataset.Fragment{{Truth: []bool{true}, Tasks: [][]int{{0}}}}, false); !errors.Is(err, ErrNotStreaming) {
		t.Errorf("closed-loop AdmitTasks error = %v, want ErrNotStreaming", err)
	}

	ds, frags, oracle := streamFixture(t, 5, 62, 1)
	agg, err := aggregate.ByName("EBCC", 3)
	if err != nil {
		t.Fatal(err)
	}
	couple, err := ds.EstimateCoupling()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSessionOpts(ctx, ds, pipeline.Config{
		K: 1, Budget: 6, BudgetWindow: 5, Init: agg, PriorCoupling: couple,
	}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.AdmitTasks(nil, false); !errors.Is(err, ErrBadFragment) {
		t.Errorf("empty non-final batch error = %v, want ErrBadFragment", err)
	}
	bad := &dataset.Fragment{Truth: []bool{true, false}, Tasks: [][]int{{0}}} // fact 1 unassigned
	if err := s.AdmitTasks([]*dataset.Fragment{bad}, false); !errors.Is(err, ErrBadFragment) {
		t.Errorf("invalid fragment error = %v, want ErrBadFragment", err)
	}
	stranger := &dataset.Fragment{
		Truth:   []bool{true},
		Tasks:   [][]int{{0}},
		Answers: []dataset.FragmentAnswer{{Fact: 0, Worker: "nobody", Value: true}},
	}
	if err := s.AdmitTasks([]*dataset.Fragment{stranger}, false); !errors.Is(err, ErrBadFragment) {
		t.Errorf("unknown-worker fragment error = %v, want ErrBadFragment", err)
	}
	st := s.Status()
	if !st.Streaming || st.AdmittedFragments != 0 || st.StreamEnded {
		t.Errorf("status after rejected admits = %+v, want streaming, zero fragments, open stream", st)
	}

	if err := s.AdmitTasks(frags[:1], true); err != nil {
		t.Fatalf("valid final admit: %v", err)
	}
	if err := s.AdmitTasks(frags[:1], false); !errors.Is(err, ErrStreamEnded) {
		t.Errorf("admit after final error = %v, want ErrStreamEnded", err)
	}
	if st := s.Status(); st.AdmittedFragments != 1 || !st.StreamEnded {
		t.Errorf("status after final admit = %+v, want 1 fragment, ended stream", st)
	}

	if err := driveFlip(s, oracle); err != nil {
		t.Fatal(err)
	}
	res, err := s.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksAdmitted != len(frags[0].Tasks) {
		t.Errorf("TasksAdmitted = %d, want %d", res.TasksAdmitted, len(frags[0].Tasks))
	}
	if err := s.AdmitTasks(frags[:1], false); !errors.Is(err, ErrClosed) {
		t.Errorf("admit after completion error = %v, want ErrClosed", err)
	}
}

// TestStreamingHTTPTasksEndpoint pins the POST /tasks HTTP taxonomy over
// the /v1 API: 202 on accept and on the pure final close, 409 for a
// non-streaming session and for a closed stream, 422 for an invalid
// fragment, 400 for malformed JSON.
func TestStreamingHTTPTasksEndpoint(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ds, frags, oracle := streamFixture(t, 5, 63, 1)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	m := NewManager(ManagerOptions{})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	mc := NewManagerClient(srv.URL)

	info, err := mc.Create(ctx, CreateSessionRequest{
		Name:    "stream",
		Dataset: dsBuf.Bytes(),
		Config:  SessionConfig{K: 1, Budget: 6, BudgetWindow: 5, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	plainInfo, err := mc.Create(ctx, CreateSessionRequest{
		Name:    "plain",
		Dataset: dsBuf.Bytes(),
		Config:  SessionConfig{K: 1, Budget: 4, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	wantStatus := func(err error, code int, label string) {
		t.Helper()
		var se *StatusError
		if !errors.As(err, &se) || se.Code != code {
			t.Errorf("%s: error = %v, want HTTP %d", label, err, code)
		}
	}
	cl := mc.Session(info.ID)
	plainCl := mc.Session(plainInfo.ID)

	wantStatus(plainCl.AdmitTasks(ctx, frags[:1], false), 409, "non-streaming session")
	bad := &dataset.Fragment{Truth: []bool{true, false}, Tasks: [][]int{{0}}}
	wantStatus(cl.AdmitTasks(ctx, []*dataset.Fragment{bad}, false), 422, "invalid fragment")
	if err := cl.AdmitTasks(ctx, frags[:1], false); err != nil {
		t.Fatalf("valid admit: %v", err)
	}
	if err := cl.AdmitTasks(ctx, nil, true); err != nil {
		t.Fatalf("pure final close: %v", err)
	}
	wantStatus(cl.AdmitTasks(ctx, frags[:1], false), 409, "closed stream")

	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Streaming || st.AdmittedFragments != 1 || !st.StreamEnded {
		t.Errorf("status = %+v, want streaming with 1 fragment and an ended stream", st)
	}

	// Malformed JSON is a 400 from the decoder, before AdmitTasks runs.
	resp, err := srv.Client().Post(
		srv.URL+"/v1/sessions/"+info.ID+"/tasks", "application/json",
		bytes.NewReader([]byte(`{"fragments": 7}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed payload returned %d, want 400", resp.StatusCode)
	}

	// Drive both sessions home so the server shuts down cleanly.
	s, _ := m.Get(info.ID)
	if err := driveFlip(s, oracle); err != nil {
		t.Fatal(err)
	}
	p, _ := m.Get(plainInfo.ID)
	if err := driveFlip(p, ds); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingDrainParkedEngine pins graceful shutdown of a parked
// streaming session: the drain wakes the engine out of its admission
// wait, the run concludes, and the checkpoint reflects every completed
// round.
func TestStreamingDrainParkedEngine(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ds, _, oracle := streamFixture(t, 5, 64, 1)
	agg, err := aggregate.ByName("EBCC", 3)
	if err != nil {
		t.Fatal(err)
	}
	couple, err := ds.EstimateCoupling()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSessionOpts(ctx, ds, pipeline.Config{
		K: 1, Budget: 6, BudgetWindow: 5, Init: agg, PriorCoupling: couple,
	}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := driveUntilParked(s, oracle); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Drain(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if ck == nil {
		t.Fatal("drain of a parked streaming session returned no checkpoint")
	}
	res, err := s.Wait(ctx)
	if err != nil {
		t.Fatalf("drained run: %v", err)
	}
	if res == nil || len(res.Labels) != ds.NumFacts() {
		t.Fatalf("drained run result = %+v, want labels for %d facts", res, ds.NumFacts())
	}
}

// TestConcurrentFinalAnswerSingleSeal races a full panel of concurrent
// answers against a short round timeout on a journaled session, many
// rounds in a row, then re-parses the journal: exactly one seal per
// round must have been written (parseJournal rejects a second seal for
// an already-sealed round), and the recovered session must finish with
// labels. Run under -race, it also proves the seal path is data-race
// free.
func TestConcurrentFinalAnswerSingleSeal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ds := sizedDataset(t, 6, 65)
	var dsBuf bytes.Buffer
	if err := ds.Write(&dsBuf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m := NewManager(ManagerOptions{JournalDir: dir})
	id, s, err := m.CreateFromRequest(CreateSessionRequest{
		Name:    "sealrace",
		Dataset: dsBuf.Bytes(),
		Config:  SessionConfig{K: 1, Budget: 16, Seed: 6, RoundTimeout: "2ms"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// One goroutine per expert, all hammering the open round at once, so
	// the panel-completing answer races the expiry timer round after
	// round.
	var wg sync.WaitGroup
	for _, wid := range s.Experts() {
		wg.Add(1)
		go func(wid string) {
			defer wg.Done()
			for {
				select {
				case <-s.finished:
					return
				default:
				}
				round, facts, ok := s.Queries(wid)
				if !ok {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				// Rejections are expected: the round may seal (full panel
				// or timeout) between Queries and Answer.
				s.Answer(round, wid, flipAnswers(ds, wid, facts)) //nolint:errcheck
			}
		}(wid)
	}
	res, err := s.Wait(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Labels) != ds.NumFacts() {
		t.Fatalf("run labeled %d facts, want %d", len(res.Labels), ds.NumFacts())
	}

	// The journal must parse cleanly — a double seal would fail with
	// "seal for round N, which is not open".
	deadline := time.After(5 * time.Second)
	for {
		if st, _ := m.Info(id); st.State.finished() {
			break
		}
		select {
		case <-deadline:
			t.Fatal("session never reached a terminal state")
		case <-time.After(2 * time.Millisecond):
		}
	}
	_, recs, err := journal.Open(filepath.Join(dir, id+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseJournal(recs); err != nil {
		t.Fatalf("journal of the racing run does not parse: %v", err)
	}
	seals := make(map[int]int)
	for _, r := range recs {
		if r.Type != recRoundSeal {
			continue
		}
		var sr roundSealRec
		if err := json.Unmarshal(r.Payload, &sr); err != nil {
			t.Fatal(err)
		}
		seals[sr.Round]++
	}
	for round, n := range seals {
		if n != 1 {
			t.Errorf("round %d sealed %d times, want exactly once", round, n)
		}
	}
}

// admitPayload marshals a taskAdmitRec for hand-built journals.
func admitPayload(t *testing.T, seq int, final bool, fr *dataset.Fragment) []byte {
	t.Helper()
	p, err := json.Marshal(taskAdmitRec{Seq: seq, Final: final, Fragment: fr})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestJournalTaskAdmitGrammar extends the journal grammar to the
// streaming records: admissions must be contiguous from 1, never follow
// a final, carry a fragment unless final, and every roundOpen/checkpoint
// admit-seq must stay within the journaled admissions and never run
// behind the prior high-water mark.
func TestJournalTaskAdmitGrammar(t *testing.T) {
	frag := &dataset.Fragment{Truth: []bool{true, false}, Tasks: [][]int{{0, 1}}}
	ro := func(round, admitSeq int, facts []int, panel []string) []byte {
		p, err := json.Marshal(roundOpenRec{Round: round, Facts: facts, Panel: panel, AdmitSeq: admitSeq})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name    string
		recs    []journal.Record
		wantErr string
	}{
		{
			name: "seq not contiguous",
			recs: []journal.Record{
				{Type: recTaskAdmit, Payload: admitPayload(t, 2, false, frag)},
			},
			wantErr: "task admit seq 2, want 1",
		},
		{
			name: "admit after final",
			recs: []journal.Record{
				{Type: recTaskAdmit, Payload: admitPayload(t, 1, true, frag)},
				{Type: recTaskAdmit, Payload: admitPayload(t, 2, false, frag)},
			},
			wantErr: "after the stream was finalized",
		},
		{
			name: "fragmentless non-final admit",
			recs: []journal.Record{
				{Type: recTaskAdmit, Payload: admitPayload(t, 1, false, nil)},
			},
			wantErr: "has no fragment and is not final",
		},
		{
			name: "invalid fragment",
			recs: []journal.Record{
				{Type: recTaskAdmit, Payload: admitPayload(t, 1, false,
					&dataset.Fragment{Truth: []bool{true, false}, Tasks: [][]int{{0}}})},
			},
			wantErr: "fragment fact 1 belongs to no task",
		},
		{
			name: "round open ahead of admits",
			recs: []journal.Record{
				{Type: recTaskAdmit, Payload: admitPayload(t, 1, false, frag)},
				{Type: recRoundOpen, Payload: ro(1, 2, []int{0}, []string{"e0"})},
			},
			wantErr: "planned under admit seq 2 but only 1 admits journaled",
		},
		{
			name: "round open behind the high-water mark",
			recs: []journal.Record{
				{Type: recTaskAdmit, Payload: admitPayload(t, 1, false, frag)},
				{Type: recRoundOpen, Payload: ro(1, 1, []int{0}, []string{"e0"})},
				{Type: recAnswer, Payload: mustJSON(t, answerRec{Round: 1, Worker: "e0", Values: []bool{true}})},
				{Type: recRoundSeal, Payload: mustJSON(t, roundSealRec{Round: 1, Answers: 1})},
				{Type: recRoundOpen, Payload: ro(2, 0, []int{1}, []string{"e0"})},
			},
			wantErr: "admit seq 0 behind the prior high-water mark 1",
		},
		{
			name: "valid admit stream",
			recs: []journal.Record{
				{Type: recTaskAdmit, Payload: admitPayload(t, 1, false, frag)},
				{Type: recTaskAdmit, Payload: admitPayload(t, 2, true, nil)},
			},
		},
	}
	created, _ := testCreatedPayload(t, "grammar")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs := append([]journal.Record{{Type: recCreated, Payload: created}}, tc.recs...)
			state, err := parseJournal(recs)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				if len(state.admits) != 2 || !state.admitFinal {
					t.Errorf("parsed %d admits (final=%v), want 2 with a finalized stream",
						len(state.admits), state.admitFinal)
				}
				return
			}
			if err == nil {
				t.Fatalf("parse accepted a journal violating %q", tc.wantErr)
			}
			if !contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}

	// A journal with admissions whose creation config has no budget
	// window must fail recovery, not silently drop the fragments.
	dir := t.TempDir()
	writeJournalRecords(t, filepath.Join(dir, "grammar.journal"), []journal.Record{
		{Type: recCreated, Payload: created},
		{Type: recTaskAdmit, Payload: admitPayload(t, 1, false, frag)},
	})
	m := NewManager(ManagerOptions{JournalDir: dir})
	if _, err := m.Recover(); err == nil || !contains(err.Error(), "no budget window") {
		t.Errorf("recovery error = %v, want a no-budget-window complaint", err)
	}
}

// mustJSON marshals v or fails the test.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	p, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// contains is strings.Contains without the import noise in table tests.
func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
