package taskselect

import (
	"context"
	"fmt"
	"testing"
)

// growProblem appends extra fresh-belief tasks to a problem, simulating a
// streaming admission batch.
func growProblem(t *testing.T, p Problem, seed int64, extra int) Problem {
	t.Helper()
	for i := 0; i < extra; i++ {
		m := 2 + int(seed+int64(i))%3
		p.Beliefs = append(p.Beliefs, randomDist(t, seed*1000+int64(i), m))
	}
	return p
}

// TestSelectionStateAdmitMatchesGreedy drives the engine like the
// streaming pipeline does — select, admit a batch of new tasks, Admit(),
// select again — and demands the picks stay identical to a cold Greedy
// on the grown problem, with the pre-existing task caches reused rather
// than rebuilt.
func TestSelectionStateAdmitMatchesGreedy(t *testing.T) {
	ctx := context.Background()
	ce := experts(0.85, 0.95)
	p := randomProblem(t, 3, 5, ce)
	state := NewSelectionState(0)
	for round := 0; round < 3; round++ {
		want, err := (Greedy{}).Select(ctx, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := state.Select(ctx, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		samePicks(t, fmt.Sprintf("pre-admit round %d", round), got, want)

		before := state.Stats()
		old := len(p.Beliefs)
		p = growProblem(t, p, 40+int64(round), 2)
		state.Admit(len(p.Beliefs))
		want, err = (Greedy{}).Select(ctx, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err = state.Select(ctx, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		samePicks(t, fmt.Sprintf("post-admit round %d", round), got, want)
		delta := state.Stats().Sub(before)
		if delta.Rescans != 2 {
			t.Fatalf("round %d: admit rescanned %d tasks, want only the 2 new ones", round, delta.Rescans)
		}
		if delta.Reused != int64(old) {
			t.Fatalf("round %d: admit reused %d caches, want all %d pre-existing", round, delta.Reused, old)
		}
	}
}

// TestAssignStateAdmitMatchesCostGreedy is the cost-aware mirror.
func TestAssignStateAdmitMatchesCostGreedy(t *testing.T) {
	ctx := context.Background()
	ce := assignExperts()
	p := randomProblem(t, 3, 5, ce)
	state := NewAssignState(ablationCost, 0, 0)
	for round := 0; round < 3; round++ {
		want, err := (CostGreedy{Cost: ablationCost}).SelectAssign(ctx, p, 6)
		if err != nil {
			t.Fatal(err)
		}
		got, err := state.SelectAssign(ctx, p, 6)
		if err != nil {
			t.Fatal(err)
		}
		sameAssigns(t, fmt.Sprintf("pre-admit round %d", round), got, want)

		before := state.Stats()
		old := len(p.Beliefs)
		p = growProblem(t, p, 90+int64(round), 2)
		state.Admit(len(p.Beliefs))
		want, err = (CostGreedy{Cost: ablationCost}).SelectAssign(ctx, p, 6)
		if err != nil {
			t.Fatal(err)
		}
		got, err = state.SelectAssign(ctx, p, 6)
		if err != nil {
			t.Fatal(err)
		}
		sameAssigns(t, fmt.Sprintf("post-admit round %d", round), got, want)
		delta := state.Stats().Sub(before)
		if delta.Rescans != 2 {
			t.Fatalf("round %d: admit rescanned %d tasks, want only the 2 new ones", round, delta.Rescans)
		}
		if delta.Reused != int64(old) {
			t.Fatalf("round %d: admit reused %d caches, want all %d pre-existing", round, delta.Reused, old)
		}
	}
}

// TestAdmitBeforeFirstSyncIsSafe pins the cold-start contract: Admit on a
// never-synced state must not leave a partial table behind.
func TestAdmitBeforeFirstSyncIsSafe(t *testing.T) {
	ctx := context.Background()
	ce := experts(0.85, 0.95)
	p := randomProblem(t, 5, 4, ce)
	state := NewSelectionState(0)
	state.Admit(4) // never synced: must be ignored
	want, err := (Greedy{}).Select(ctx, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := state.Select(ctx, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	samePicks(t, "cold admit", got, want)
}
