package taskselect

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/mathx"
)

// Assign is one answer unit within a task: a specific expert answering a
// specific local fact. The paper's model sends every query to every
// expert; §III-D's cost extension ("the cost is related to his/her
// accuracy rate … the optimization and approximation algorithms need to
// be re-designed") makes the assignment itself part of the optimization,
// which this file implements.
type Assign struct {
	Fact   int
	Worker crowd.Worker
}

// TaskAssign is an assignment unit in a multi-task problem.
type TaskAssign struct {
	Task   int
	Fact   int
	Worker crowd.Worker
}

// CondEntropyAssign computes H(O | {A_{cr,f}}) for an arbitrary set of
// per-expert, per-fact answer variables within one task — the
// generalization of CondEntropy beyond "every expert answers every
// query". The projection identity still applies: every answer depends on
// the observation only through its fact's truth value.
func CondEntropyAssign(d *belief.Dist, assigns []Assign) (float64, error) {
	if len(assigns) == 0 {
		return d.Entropy(), nil
	}
	seen := make(map[string]map[int]bool)
	facts := make([]int, 0, len(assigns))
	factSet := make(map[int]bool)
	for _, a := range assigns {
		if err := a.Worker.Validate(); err != nil {
			return 0, err
		}
		if a.Fact < 0 || a.Fact >= d.NumFacts() {
			return 0, fmt.Errorf("taskselect: assigned fact %d outside task with %d facts", a.Fact, d.NumFacts())
		}
		if seen[a.Worker.ID] == nil {
			seen[a.Worker.ID] = make(map[int]bool)
		}
		if seen[a.Worker.ID][a.Fact] {
			return 0, fmt.Errorf("taskselect: duplicate assignment %s->f%d", a.Worker.ID, a.Fact)
		}
		seen[a.Worker.ID][a.Fact] = true
		if !factSet[a.Fact] {
			factSet[a.Fact] = true
			facts = append(facts, a.Fact)
		}
	}
	if len(assigns) > maxFamilyBits {
		return 0, fmt.Errorf("%w: %d answer variables", ErrTooLarge, len(assigns))
	}
	sort.Ints(facts)
	factPos := make(map[int]int, len(facts))
	for i, f := range facts {
		factPos[f] = i
	}
	q := projection(d, facts)

	// pYes[i][tv]: P(assign i answers Yes | its fact's truth is tv).
	pYes := make([][2]float64, len(assigns))
	pos := make([]int, len(assigns))
	for i, a := range assigns {
		pYes[i][1] = a.Worker.PCorrect(true)
		pYes[i][0] = 1 - a.Worker.PCorrect(false)
		pos[i] = factPos[a.Fact]
	}
	return condEntropyAssignCore(d.Entropy(), q, pYes, pos), nil
}

// condEntropyAssignCore is the evaluation half of CondEntropyAssign,
// split out (like condEntropySymCore) so AssignState can memoize the
// projection and the per-worker yes probabilities across calls. The
// arithmetic is identical to the inline form, so memoized and fresh
// evaluations agree bitwise; pos[i] is the bit position of assign i's
// fact in q's pattern space. It bumps the package eval counter — the
// cost unit the incremental-assignment benchmarks compare by.
func condEntropyAssignCore(entropy float64, q []float64, pYes [][2]float64, pos []int) float64 {
	evalCount.Add(1)

	n := len(pos)
	var hAS float64
	if nFam := 1 << uint(n); nFam >= minBatchFam && nFam <= maxBatchFam {
		hAS = assignFamilyEntropyBatch(q, pYes, pos)
	} else {
		hAS = assignFamilyEntropyScalar(q, pYes, pos)
	}

	// H(AS|O) = Σ_p q(p) Σ_i h(P(assign i answers yes | p)); the per-unit
	// Bernoulli entropies are computed once up front.
	sc := corePool.Get().(*coreScratch)
	sc.hB = growPairs(sc.hB, n)
	hB := sc.hB
	for i := 0; i < n; i++ {
		hB[i][0] = mathx.BernoulliEntropy(pYes[i][0])
		hB[i][1] = mathx.BernoulliEntropy(pYes[i][1])
	}
	var hASgivenO float64
	for p, qp := range q {
		if qp == 0 {
			continue
		}
		var hp float64
		for i := 0; i < n; i++ {
			hp += hB[i][(p>>uint(pos[i]))&1]
		}
		hASgivenO += qp * hp
	}
	corePool.Put(sc)

	h := entropy - hAS + hASgivenO
	if h < 0 {
		h = 0
	}
	return h
}

// assignFamilyEntropyScalar is the constant-space family sweep over the
// 2^n yes/no outcome vectors of the assigned answer variables.
func assignFamilyEntropyScalar(q []float64, pYes [][2]float64, pos []int) float64 {
	n := len(pos)
	var hAS float64
	nFam := 1 << uint(n)
	for fam := 0; fam < nFam; fam++ {
		var pA float64
		for p, qp := range q {
			if qp == 0 {
				continue
			}
			like := qp
			for i := 0; i < n; i++ {
				tv := (p >> uint(pos[i])) & 1
				py := pYes[i][tv]
				if fam&(1<<uint(i)) != 0 {
					like *= py
				} else {
					like *= 1 - py
				}
			}
			pA += like
		}
		hAS -= mathx.XLogX(pA)
	}
	return hAS
}

// assignFamilyEntropyBatch computes the same H(AS) pattern-outside: for
// each projection pattern the per-unit two-point factor vectors [1-py,
// py] expand by OuterMul (unit i's answer is family bit i, so each new
// unit lands in the high bit of the partial index), the expansion adds
// into the per-family accumulator, and EntropySum folds it. Bitwise
// identical to the scalar sweep for the same reasons as
// symFamilyEntropyBatch: commutative per-node products in the same chain
// shape, pattern-order accumulation, and the same XLogX fold.
func assignFamilyEntropyBatch(q []float64, pYes [][2]float64, pos []int) float64 {
	n := len(pos)
	sc := corePool.Get().(*coreScratch)
	nFam := 1 << uint(n)
	sc.pAs = growFloats(sc.pAs, nFam)
	sc.ta = growFloats(sc.ta, nFam)
	sc.tb = growFloats(sc.tb, nFam)
	sc.v = growFloats(sc.v, 2)
	pAs, v := sc.pAs, sc.v[:2]
	for i := range pAs {
		pAs[i] = 0
	}
	for p, qp := range q {
		if qp == 0 {
			continue
		}
		spare := sc.tb
		cur := sc.ta[:1]
		cur[0] = qp
		for i := 0; i < n; i++ {
			py := pYes[i][(p>>uint(pos[i]))&1]
			v[0] = 1 - py
			v[1] = py
			dst := spare[:2*len(cur)]
			mathx.OuterMul(dst, v, cur)
			spare = cur[:cap(cur)]
			cur = dst
		}
		mathx.AddTo(pAs, cur)
	}
	hAS := mathx.EntropySum(pAs)
	corePool.Put(sc)
	return hAS
}

// AssignSelector chooses assignment units — (task, fact, worker)
// answer purchases — totaling at most budget in cost. CostGreedy is the
// stateless implementation; AssignState is the incremental one with
// cross-round gain caching, pick-identical to CostGreedy.
type AssignSelector interface {
	// Name identifies the selector in experiment output.
	Name() string
	SelectAssign(ctx context.Context, p Problem, budget float64) ([]TaskAssign, error)
}

// CostGreedy selects assignment units greedily by gain-per-cost until the
// budget is exhausted: the budgeted-submodular extension of Algorithm 2
// that §III-D leaves as future work. Each unit's marginal gain is the
// conditional-entropy drop of adding that expert's answer on that fact to
// the task's current assignment; the unit's cost comes from the cost
// function (unit cost when nil).
type CostGreedy struct {
	// Cost prices one answer from a worker; nil means 1 per answer.
	Cost func(w crowd.Worker) float64
	// MaxAssignsPerTask caps the answer variables accumulated in one task
	// (the enumeration is exponential in them); default 12.
	MaxAssignsPerTask int
}

// Name identifies the selector in experiment output.
func (CostGreedy) Name() string { return "CostGreedy" }

// SelectAssign chooses assignment units totaling at most budget in cost.
// It returns fewer when no remaining affordable unit has positive gain.
func (g CostGreedy) SelectAssign(ctx context.Context, p Problem, budget float64) ([]TaskAssign, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if budget <= 0 {
		return nil, nil
	}
	maxPer := g.MaxAssignsPerTask
	if maxPer <= 0 {
		maxPer = 12
	}
	cost := g.Cost
	if cost == nil {
		cost = func(crowd.Worker) float64 { return 1 }
	}
	for _, w := range p.Experts {
		if cost(w) <= 0 {
			return nil, errors.New("taskselect: non-positive worker cost")
		}
	}
	current := make(map[int][]Assign) // task -> chosen units
	baseH := make([]float64, len(p.Beliefs))
	for t, d := range p.Beliefs {
		baseH[t] = d.Entropy()
	}
	var picks []TaskAssign
	remaining := budget
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		type cand struct {
			u     TaskAssign
			ratio float64
			gain  float64
			c     float64
		}
		best := cand{ratio: math.Inf(-1)}
		for t, d := range p.Beliefs {
			if len(current[t]) >= maxPer {
				continue
			}
			for f := 0; f < d.NumFacts(); f++ {
				if p.frozen(t, f) {
					continue
				}
				for _, w := range p.Experts {
					c := cost(w)
					if c > remaining {
						continue
					}
					if hasAssign(current[t], w.ID, f) {
						continue
					}
					trial := append(append([]Assign{}, current[t]...), Assign{Fact: f, Worker: w})
					h, err := CondEntropyAssign(d, trial)
					if err != nil {
						return nil, err
					}
					gain := baseH[t] - h
					ratio := gain / c
					if ratio > best.ratio {
						best = cand{
							u:     TaskAssign{Task: t, Fact: f, Worker: w},
							ratio: ratio, gain: gain, c: c,
						}
					}
				}
			}
		}
		if math.IsInf(best.ratio, -1) || best.gain <= gainEps {
			break
		}
		picks = append(picks, best.u)
		t := best.u.Task
		current[t] = append(current[t], Assign{Fact: best.u.Fact, Worker: best.u.Worker})
		h, err := CondEntropyAssign(p.Beliefs[t], current[t])
		if err != nil {
			return nil, err
		}
		baseH[t] = h
		remaining -= best.c
		if remaining <= 0 {
			break
		}
	}
	sort.Slice(picks, func(i, j int) bool {
		if picks[i].Task != picks[j].Task {
			return picks[i].Task < picks[j].Task
		}
		if picks[i].Fact != picks[j].Fact {
			return picks[i].Fact < picks[j].Fact
		}
		return picks[i].Worker.ID < picks[j].Worker.ID
	})
	return picks, nil
}

func hasAssign(as []Assign, workerID string, fact int) bool {
	for _, a := range as {
		if a.Worker.ID == workerID && a.Fact == fact {
			return true
		}
	}
	return false
}
