package taskselect

import (
	"context"
	"testing"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
)

func TestCondEntropyAssignMatchesFullCrowd(t *testing.T) {
	// Assigning every expert to every query must equal CondEntropy.
	for seed := int64(0); seed < 12; seed++ {
		d := randomDist(t, 40000+seed, 3)
		ce := experts(0.85, 0.95)
		for _, facts := range [][]int{{0}, {0, 2}, {0, 1, 2}} {
			var assigns []Assign
			for _, w := range ce {
				for _, f := range facts {
					assigns = append(assigns, Assign{Fact: f, Worker: w})
				}
			}
			ha, err := CondEntropyAssign(d, assigns)
			if err != nil {
				t.Fatal(err)
			}
			hc, err := CondEntropy(d, ce, facts)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(ha, hc, 1e-9) {
				t.Errorf("seed %d T=%v: assign %v != full %v", seed, facts, ha, hc)
			}
		}
	}
}

func TestCondEntropyAssignPartial(t *testing.T) {
	// A partial assignment carries less information than the full one,
	// and more than nothing.
	d := tableIDist(t)
	ce := experts(0.9, 0.95)
	full := []Assign{
		{Fact: 0, Worker: ce[0]}, {Fact: 0, Worker: ce[1]},
		{Fact: 2, Worker: ce[0]}, {Fact: 2, Worker: ce[1]},
	}
	partial := []Assign{
		{Fact: 0, Worker: ce[0]},
		{Fact: 2, Worker: ce[1]},
	}
	hFull, err := CondEntropyAssign(d, full)
	if err != nil {
		t.Fatal(err)
	}
	hPartial, err := CondEntropyAssign(d, partial)
	if err != nil {
		t.Fatal(err)
	}
	if !(hFull < hPartial && hPartial < d.Entropy()) {
		t.Errorf("ordering violated: full %v, partial %v, prior %v",
			hFull, hPartial, d.Entropy())
	}
}

func TestCondEntropyAssignValidation(t *testing.T) {
	d := tableIDist(t)
	w := crowd.Worker{ID: "e", Accuracy: 0.9}
	if _, err := CondEntropyAssign(d, []Assign{{Fact: 9, Worker: w}}); err == nil {
		t.Error("out-of-range fact accepted")
	}
	dup := []Assign{{Fact: 0, Worker: w}, {Fact: 0, Worker: w}}
	if _, err := CondEntropyAssign(d, dup); err == nil {
		t.Error("duplicate assignment accepted")
	}
	bad := crowd.Worker{ID: "b", Accuracy: 0.2}
	if _, err := CondEntropyAssign(d, []Assign{{Fact: 0, Worker: bad}}); err == nil {
		t.Error("invalid worker accepted")
	}
	h, err := CondEntropyAssign(d, nil)
	if err != nil || !almostEqual(h, d.Entropy(), 1e-12) {
		t.Errorf("empty assignment: %v, %v", h, err)
	}
}

func TestCostGreedyRespectsBudget(t *testing.T) {
	p := Problem{
		Beliefs: []*belief.Dist{tableIDist(t), randomDist(t, 41000, 3)},
		Experts: experts(0.9, 0.95),
	}
	cost := func(w crowd.Worker) float64 { return 1 + 5*(w.Accuracy-0.9) }
	g := CostGreedy{Cost: cost}
	picks, err := g.SelectAssign(context.Background(), p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) == 0 {
		t.Fatal("no assignments selected")
	}
	var spent float64
	for _, u := range picks {
		spent += cost(u.Worker)
	}
	if spent > 4+1e-9 {
		t.Errorf("spent %v of budget 4", spent)
	}
}

func TestCostGreedyPrefersCheapWorkerWhenGainEqual(t *testing.T) {
	// Two experts with identical accuracy but different prices: the first
	// pick must be the cheap one (same gain, better ratio).
	p := Problem{
		Beliefs: []*belief.Dist{tableIDist(t)},
		Experts: crowd.Crowd{
			{ID: "cheap", Accuracy: 0.9},
			{ID: "pricey", Accuracy: 0.9},
		},
	}
	cost := func(w crowd.Worker) float64 {
		if w.ID == "pricey" {
			return 3
		}
		return 1
	}
	picks, err := CostGreedy{Cost: cost}.SelectAssign(context.Background(), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 1 || picks[0].Worker.ID != "cheap" {
		t.Errorf("picks = %v, want single cheap assignment", picks)
	}
}

func TestCostGreedyMatchesGreedyAtUnitCost(t *testing.T) {
	// With unit costs and budget k·|CE| the cost-aware selection is free
	// to reproduce the plain greedy's value; its realized objective must
	// be at least as good (it may split experts across facts).
	ctx := context.Background()
	for seed := int64(0); seed < 6; seed++ {
		p := Problem{
			Beliefs: []*belief.Dist{randomDist(t, 42000+seed, 3)},
			Experts: experts(0.85, 0.92),
		}
		plain, err := Greedy{}.Select(ctx, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		var plainAssigns []Assign
		for _, c := range plain {
			for _, w := range p.Experts {
				plainAssigns = append(plainAssigns, Assign{Fact: c.Fact, Worker: w})
			}
		}
		hPlain, err := CondEntropyAssign(p.Beliefs[0], plainAssigns)
		if err != nil {
			t.Fatal(err)
		}
		assigned, err := CostGreedy{}.SelectAssign(ctx, p, float64(len(plainAssigns)))
		if err != nil {
			t.Fatal(err)
		}
		var units []Assign
		for _, u := range assigned {
			units = append(units, Assign{Fact: u.Fact, Worker: u.Worker})
		}
		hAssigned, err := CondEntropyAssign(p.Beliefs[0], units)
		if err != nil {
			t.Fatal(err)
		}
		if hAssigned > hPlain+0.05 {
			t.Errorf("seed %d: cost-aware %v much worse than plain %v", seed, hAssigned, hPlain)
		}
	}
}

func TestCostGreedyValidation(t *testing.T) {
	p := Problem{
		Beliefs: []*belief.Dist{tableIDist(t)},
		Experts: experts(0.9),
	}
	ctx := context.Background()
	picks, err := CostGreedy{}.SelectAssign(ctx, p, 0)
	if err != nil || picks != nil {
		t.Errorf("zero budget: %v, %v", picks, err)
	}
	bad := CostGreedy{Cost: func(crowd.Worker) float64 { return 0 }}
	if _, err := bad.SelectAssign(ctx, p, 5); err == nil {
		t.Error("zero cost accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := (CostGreedy{}).SelectAssign(cancelled, p, 5); err == nil {
		t.Error("cancellation ignored")
	}
}

func TestCostGreedyStopsAtZeroGain(t *testing.T) {
	joint := make([]float64, 8)
	joint[2] = 1
	d, err := belief.FromJoint(joint)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Beliefs: []*belief.Dist{d}, Experts: experts(0.9)}
	picks, err := CostGreedy{}.SelectAssign(context.Background(), p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 0 {
		t.Errorf("selected %v from a certain belief", picks)
	}
}
