package taskselect

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
)

// AssignState is the incremental variant of CostGreedy: identical unit
// purchases buy for buy (same values, same deterministic tie-break), but
// the per-task round-start unit gains gain^∅(f, cr) = H(O_t) −
// H(O_t|A_{cr,f}) are cached between SelectAssign calls and recomputed
// only for tasks the caller has Invalidated — in the pipeline, the tasks
// whose beliefs the previous round's answers updated. CostGreedy re-scans
// every (task, fact, worker) unit on every buy iteration of every round;
// the state pays that scan once per touched task and orders the buy loop
// through a two-level argmax on gain-per-cost instead:
//
//   - Every task caches the first strict maximum of its unit-gain table
//     (fact then worker ascending — the scan order of CostGreedy's inner
//     loops), and each buy scans those per-task bests in task order with
//     a strict comparison: exactly CostGreedy's first-strict-max, at
//     O(N) per buy with no queue maintenance and no allocation.
//   - Affordability is revalidated lazily: the chunk budget only shrinks
//     within a call, so a cached best stays valid until its cost exceeds
//     the remaining budget, at which point the task's row is re-scanned
//     with the affordability filter (no new entropy evaluations — the
//     gains are cached). CostGreedy filters the same units out of its
//     scan, which is what keeps the argmax identical.
//   - A buy only perturbs the gains of its own task (tasks are
//     independent), so that task's remaining units are re-evaluated
//     eagerly — exactly CostGreedy's recompute schedule, for the same
//     ulp-level reasons as SelectionState's eager refresh — into a
//     per-round live table; units already bought, frozen, or no longer
//     affordable are marked dead.
//   - The crowd-derived pieces (yes-probability table, per-worker costs)
//     are computed once per crowd, and the belief-dependent projection is
//     memoized per task until the task is invalidated.
//
// The caller owns cache coherence exactly as with SelectionState: after
// mutating a task's belief (or its Frozen mask) it must call
// Invalidate(task) before the next SelectAssign. Crowd or problem-shape
// changes reset the state wholesale. Workers > 1 re-scans invalidated
// tasks concurrently and fans the post-buy refresh out the same way; the
// projection memo is mutex-guarded and goroutines write disjoint row
// slots, so the parallel refresh is bit-identical to the serial one. Not
// safe for concurrent SelectAssign calls.
type AssignState struct {
	// Cost prices one answer from a worker; nil means 1 per answer. Must
	// match across calls — it is sampled per crowd at sync time.
	Cost func(w crowd.Worker) float64
	// MaxAssignsPerTask caps the answer variables accumulated in one task
	// (the enumeration is exponential in them); default 12, as CostGreedy.
	MaxAssignsPerTask int
	// Workers bounds the goroutines of the invalidation re-scan and the
	// post-buy row refresh; <= 1 means serial.
	Workers int

	// Crowd-derived memos, reset when the crowd signature changes.
	crowdSig string
	ce       crowd.Crowd
	costs    []float64    // cost per worker, crowd order
	pYes     [][2]float64 // P(yes | truth) per worker

	tasks []*assignTaskCache

	// dirtyList and touchedList are per-call scratch (task indices), kept
	// on the state so steady-state rounds reuse their capacity.
	dirtyList   []int
	touchedList []int

	// pending holds a cache restored via RestoreCache until the next sync
	// adopts it.
	pending *SelectionCache

	stats engineStats
}

// assignTaskCache holds the belief-derived memos for one task.
type assignTaskCache struct {
	dirty     bool
	entropy   float64     // H(O_t)
	base      [][]float64 // round-start gain per [fact][worker]; NaN rows mark frozen facts
	frozen    []bool      // the mask base was computed under
	anyFrozen bool        // OR of frozen, the drift check's fast path

	// proj memoizes the belief's projections per query-fact set; projMu
	// guards it against the parallel refresh (duplicate computes are
	// bitwise-identical, so last-write-wins is harmless).
	projMu sync.Mutex
	proj   map[string][]float64 //hclint:guardedby projMu

	// bestFact/bestWorker/... cache the first strict maximum of base by
	// gain-per-cost, ignoring affordability (revalidated at use);
	// bestFact == -1 when the task has no live unit.
	bestFact, bestWorker          int
	bestGain, bestCost, bestRatio float64

	// Buy-loop scratch, only meaningful while touched (reset at the start
	// of the next SelectAssign): units holds this round's purchases in
	// this task in buy order, live the refreshed unit gains given units
	// with NaN on dead (bought, frozen, or unaffordable-forever) units.
	touched                                   bool
	units                                     []unitRef
	live                                      [][]float64
	liveBestFact, liveBestWorker              int
	liveBestGain, liveBestCost, liveBestRatio float64
}

// resetRound clears the buy-loop scratch; live is re-filled when the
// task is next touched.
func (tc *assignTaskCache) resetRound() {
	tc.touched = false
	tc.units = tc.units[:0]
}

// rowBest returns the first strict maximum by gain-per-cost over a
// [fact][worker] gain table, restricted to units costing at most limit.
// NaN entries (frozen, bought, or expired) are skipped; fact == -1 when
// nothing qualifies. Scanning facts then workers ascending with a strict
// > is exactly CostGreedy's tie-break order.
func rowBest(rows [][]float64, costs []float64, limit float64) (fact, worker int, gain, cost, ratio float64) {
	fact, worker = -1, -1
	ratio = math.Inf(-1)
	for f, row := range rows {
		for wi, g := range row {
			if math.IsNaN(g) || costs[wi] > limit {
				continue
			}
			if r := g / costs[wi]; r > ratio {
				fact, worker, gain, cost, ratio = f, wi, g, costs[wi], r
			}
		}
	}
	return fact, worker, gain, cost, ratio
}

// curBest returns the task's current affordable argmax unit: the cached
// best when it is still affordable, a filtered row re-scan otherwise.
// The re-scan never overwrites the cached round-start best — the next
// call starts from a fresh budget.
func (tc *assignTaskCache) curBest(costs []float64, remaining float64) (fact, worker int, gain, cost, ratio float64) {
	rows := tc.base
	bf, bw := tc.bestFact, tc.bestWorker
	bg, bc, br := tc.bestGain, tc.bestCost, tc.bestRatio
	if tc.touched {
		rows = tc.live
		bf, bw = tc.liveBestFact, tc.liveBestWorker
		bg, bc, br = tc.liveBestGain, tc.liveBestCost, tc.liveBestRatio
	}
	if bf < 0 {
		return -1, -1, 0, 0, math.Inf(-1)
	}
	if bc <= remaining {
		return bf, bw, bg, bc, br
	}
	return rowBest(rows, costs, remaining)
}

// unitRef is one answer unit in crowd-index form: worker indexes the
// synced crowd. Keeping indices rather than Worker values makes the
// dedup and memo lookups allocation-free.
type unitRef struct {
	fact   int
	worker int
}

// NewAssignState returns an empty incremental assignment engine; the
// first SelectAssign populates it for the problem it sees. cost nil
// means unit cost, maxAssignsPerTask <= 0 means 12, workers <= 1 means a
// serial re-scan.
func NewAssignState(cost func(w crowd.Worker) float64, maxAssignsPerTask, workers int) *AssignState {
	return &AssignState{Cost: cost, MaxAssignsPerTask: maxAssignsPerTask, Workers: workers}
}

// Name implements AssignSelector. The engine reports the same name as
// CostGreedy because it is the same algorithm — only the evaluation
// schedule differs.
func (s *AssignState) Name() string { return "CostGreedy" }

// Invalidate marks tasks whose beliefs (or frozen masks) changed since
// the last SelectAssign, forcing their cached unit gains to be
// recomputed. Out-of-range indices are ignored.
func (s *AssignState) Invalidate(tasks ...int) {
	for _, t := range tasks {
		if t >= 0 && t < len(s.tasks) && s.tasks[t] != nil {
			s.tasks[t].dirty = true
		}
	}
}

// InvalidateAll drops every cached unit gain (keeping the crowd memos).
func (s *AssignState) InvalidateAll() {
	for _, tc := range s.tasks {
		if tc != nil {
			tc.dirty = true
		}
	}
}

// Admit grows the task table to total tasks, appending cold cache slots
// for the newly admitted tasks while keeping every existing task's cached
// unit gains and the crowd memos — the next sync slab-fills only the new
// slots instead of resetting wholesale. A state that has not synced yet
// is left untouched: its first sync builds the table at the grown size
// anyway. total at or below the current size is a no-op.
func (s *AssignState) Admit(total int) {
	if len(s.tasks) == 0 || total <= len(s.tasks) {
		return
	}
	s.tasks = append(s.tasks, make([]*assignTaskCache, total-len(s.tasks))...)
}

// costOf applies the configured cost model.
func (s *AssignState) costOf(w crowd.Worker) float64 {
	if s.Cost != nil {
		return s.Cost(w)
	}
	return 1
}

// maxPer resolves the per-task assignment cap.
func (s *AssignState) maxPer() int {
	if s.MaxAssignsPerTask > 0 {
		return s.MaxAssignsPerTask
	}
	return 12
}

// sync aligns the cache with the problem: a crowd or shape change resets
// everything (adopting a pending restored cache when it matches), and a
// frozen-mask drift on a clean task dirties it.
func (s *AssignState) sync(p Problem) {
	if !crowdEqual(s.ce, p.Experts) || len(p.Beliefs) != len(s.tasks) {
		s.crowdSig = crowdSignature(p.Experts)
		s.ce = append(crowd.Crowd(nil), p.Experts...)
		s.pYes = asymYesTable(p.Experts)
		s.costs = make([]float64, len(p.Experts))
		for i, w := range p.Experts {
			s.costs[i] = s.costOf(w)
		}
		s.tasks = make([]*assignTaskCache, len(p.Beliefs))
		s.adoptPending(p)
	}
	s.pending = nil
	// Batch-allocate caches for tasks still missing one (all of them after
	// a reset, none in steady state) instead of one heap object per task.
	missing := 0
	for _, tc := range s.tasks {
		if tc == nil {
			missing++
		}
	}
	if missing > 0 {
		slab := make([]assignTaskCache, missing)
		i := 0
		for t := range s.tasks {
			if s.tasks[t] == nil {
				slab[i].dirty = true
				s.tasks[t] = &slab[i]
				i++
			}
		}
	}
	for t, tc := range s.tasks {
		if !tc.dirty && !frozenEqual(tc.frozen, tc.anyFrozen, p, t) {
			tc.dirty = true
		}
	}
}

// memoProj returns the memoized projection of tc's belief onto the
// sorted fact list, computing and storing it on miss. The varint key
// (projKey) distinguishes all fact indices — the old single-byte
// encoding collided for indices ≥ 256. Safe under the parallel refresh:
// lookups and stores hold projMu, the computation runs outside it, and a
// lost race recomputes a bitwise-identical vector.
func (s *AssignState) memoProj(sc *evalScratch, tc *assignTaskCache, d *belief.Dist, facts []int) []float64 {
	sc.key = projKey(sc.key[:0], facts)
	tc.projMu.Lock()
	q, ok := tc.proj[string(sc.key)]
	tc.projMu.Unlock()
	if ok {
		return q
	}
	q = projection(d, facts)
	tc.projMu.Lock()
	if prev, ok := tc.proj[string(sc.key)]; ok {
		q = prev
	} else {
		tc.proj[string(sc.key)] = q
	}
	tc.projMu.Unlock()
	return q
}

// condEntropy evaluates H(O_t | units) through the memos, using sc for
// the per-unit tables. It matches CondEntropyAssign bitwise for units
// listed in the same order: the core runs the identical arithmetic, only
// the setup (projection, per-worker yes probabilities) comes from cache.
func (s *AssignState) condEntropy(sc *evalScratch, tc *assignTaskCache, d *belief.Dist, units []unitRef) (float64, error) {
	if len(units) == 0 {
		return tc.entropy, nil
	}
	if len(units) > maxFamilyBits {
		return 0, fmt.Errorf("%w: %d answer variables", ErrTooLarge, len(units))
	}
	s.stats.evals.Add(1)
	// Distinct facts in encounter order, then sorted — the same fact list
	// CondEntropyAssign derives, so the projection patterns line up.
	facts := sc.facts[:0]
	for _, u := range units {
		dup := false
		for _, f := range facts {
			if f == u.fact {
				dup = true
				break
			}
		}
		if !dup {
			facts = append(facts, u.fact)
		}
	}
	sort.Ints(facts)
	sc.facts = facts
	q := s.memoProj(sc, tc, d, facts)
	sc.pyes = growPairs(sc.pyes, len(units))
	sc.pos = growInts(sc.pos, len(units))
	for i, u := range units {
		sc.pyes[i] = s.pYes[u.worker]
		for j, f := range facts {
			if f == u.fact {
				sc.pos[i] = j
				break
			}
		}
	}
	return condEntropyAssignCore(tc.entropy, q, sc.pyes, sc.pos), nil
}

// rescan rebuilds the round-start unit-gain cache of task t.
func (s *AssignState) rescan(ctx context.Context, p Problem, t int) error {
	tc := s.tasks[t]
	d := p.Beliefs[t]
	sc := getScratch()
	defer putScratch(sc)
	tc.entropy = d.Entropy()
	// The re-scan partitions tasks per worker, so tc is effectively
	// owned here — but the reset still takes projMu (uncontended, once
	// per task per round) so the guardedby invariant holds on every
	// path rather than by phase-ordering argument.
	tc.projMu.Lock()
	if tc.proj == nil {
		tc.proj = make(map[string][]float64)
	} else {
		clear(tc.proj) // stale belief's projections; keep the buckets
	}
	tc.projMu.Unlock()
	m, w := d.NumFacts(), len(s.ce)
	tc.frozen = growBools(tc.frozen, m)
	tc.anyFrozen = false
	tc.base = growRows(tc.base, m, w)
	for f := 0; f < m; f++ {
		row := tc.base[f]
		tc.frozen[f] = p.frozen(t, f)
		if tc.frozen[f] {
			tc.anyFrozen = true
			for wi := range row {
				row[wi] = math.NaN()
			}
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		for wi := 0; wi < w; wi++ {
			sc.units = append(sc.units[:0], unitRef{fact: f, worker: wi})
			h, err := s.condEntropy(sc, tc, d, sc.units)
			if err != nil {
				return err
			}
			row[wi] = tc.entropy - h
		}
	}
	tc.bestFact, tc.bestWorker, tc.bestGain, tc.bestCost, tc.bestRatio =
		rowBest(tc.base, s.costs, math.Inf(1))
	tc.dirty = false
	return nil
}

// hasUnit reports whether the unit list already contains (worker, fact).
func hasUnit(units []unitRef, worker, fact int) bool {
	for _, u := range units {
		if u.worker == worker && u.fact == fact {
			return true
		}
	}
	return false
}

// refill re-evaluates task tc's remaining units against the enlarged
// purchase set (conditional entropy nh) — exactly CostGreedy's recompute
// schedule after a buy — marking bought, frozen, and no-longer-affordable
// units dead (the chunk budget only shrinks within a call, so they can
// never come back), then refreshes the task's cached argmax. Workers > 1
// fans the per-fact evaluations out with pooled scratch and disjoint row
// writes; the reduction runs serially, so the result matches the serial
// sweep bitwise.
func (s *AssignState) refill(ctx context.Context, tc *assignTaskCache, d *belief.Dist, nh, remaining float64) error {
	m, w := d.NumFacts(), len(s.ce)
	err := scanAll(ctx, m, s.Workers, func(f int) error {
		row := tc.live[f]
		if tc.frozen[f] {
			for wi := range row {
				row[wi] = math.NaN()
			}
			return nil
		}
		sc := getScratch()
		defer putScratch(sc)
		for wi := 0; wi < w; wi++ {
			if s.costs[wi] > remaining || hasUnit(tc.units, wi, f) {
				row[wi] = math.NaN()
				continue
			}
			sc.units = append(sc.units[:0], tc.units...)
			sc.units = append(sc.units, unitRef{fact: f, worker: wi})
			th, err := s.condEntropy(sc, tc, d, sc.units)
			if err != nil {
				return err
			}
			row[wi] = nh - th
		}
		return nil
	})
	if err != nil {
		return err
	}
	tc.liveBestFact, tc.liveBestWorker, tc.liveBestGain, tc.liveBestCost, tc.liveBestRatio =
		rowBest(tc.live, s.costs, math.Inf(1))
	return nil
}

// SelectAssign implements AssignSelector. See the type comment for the
// contract; the purchases are identical to CostGreedy.SelectAssign with
// the same cost model on the same problem.
func (s *AssignState) SelectAssign(ctx context.Context, p Problem, budget float64) ([]TaskAssign, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if budget <= 0 {
		return nil, nil
	}
	for _, w := range p.Experts {
		if s.costOf(w) <= 0 {
			return nil, errors.New("taskselect: non-positive worker cost")
		}
	}
	maxPer := s.maxPer()
	// Clear the previous round's buy-loop scratch up front (error-path
	// aborts must not leak) and before sync, which may swap the table.
	for _, t := range s.touchedList {
		if t < len(s.tasks) && s.tasks[t] != nil {
			s.tasks[t].resetRound()
		}
	}
	s.touchedList = s.touchedList[:0]
	s.sync(p)
	s.stats.selects.Add(1)

	// Parallel invalidation re-scan: only dirty tasks pay the O(m·|CE|)
	// unit-gain sweep.
	s.dirtyList = s.dirtyList[:0]
	for t, tc := range s.tasks {
		if tc.dirty {
			s.dirtyList = append(s.dirtyList, t)
		}
	}
	s.stats.rescans.Add(int64(len(s.dirtyList)))
	s.stats.reused.Add(int64(len(s.tasks) - len(s.dirtyList)))
	if len(s.dirtyList) > 0 {
		err := scanAll(ctx, len(s.dirtyList), s.Workers, func(i int) error {
			return s.rescan(ctx, p, s.dirtyList[i])
		})
		if err != nil {
			return nil, err
		}
	}

	sc := getScratch()
	defer putScratch(sc)
	var picks []TaskAssign
	remaining := budget
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Two-level argmax: per-task cached bests with lazy affordability,
		// scanned in task order with a strict > — CostGreedy's exact
		// first-strict-max over (task, fact, worker).
		bt, bf, bw := -1, -1, -1
		var bg, bc float64
		br := math.Inf(-1)
		for t, tc := range s.tasks {
			if tc.touched && len(tc.units) >= maxPer {
				continue
			}
			f, wi, g, c, r := tc.curBest(s.costs, remaining)
			if f >= 0 && r > br {
				bt, bf, bw, bg, bc, br = t, f, wi, g, c, r
			}
		}
		if bt < 0 || bg <= gainEps {
			// No affordable unit improves the objective: CostGreedy stops on
			// the same scan result.
			break
		}
		tc, d := s.tasks[bt], p.Beliefs[bt]
		picks = append(picks, TaskAssign{Task: bt, Fact: bf, Worker: s.ce[bw]})
		if !tc.touched {
			tc.touched = true
			s.touchedList = append(s.touchedList, bt)
			tc.live = growRows(tc.live, d.NumFacts(), len(s.ce))
		}
		tc.units = append(tc.units, unitRef{fact: bf, worker: bw})
		remaining -= bc
		if remaining <= 0 {
			break
		}
		if len(tc.units) >= maxPer {
			continue // the task is out of the pool; no refresh needed
		}
		// The enlarged selection's conditional entropy becomes the new
		// gain baseline for task bt.
		nh, err := s.condEntropy(sc, tc, d, tc.units)
		if err != nil {
			return nil, err
		}
		if err := s.refill(ctx, tc, d, nh, remaining); err != nil {
			return nil, err
		}
	}
	slices.SortFunc(picks, func(a, b TaskAssign) int {
		if a.Task != b.Task {
			return a.Task - b.Task
		}
		if a.Fact != b.Fact {
			return a.Fact - b.Fact
		}
		return strings.Compare(a.Worker.ID, b.Worker.ID)
	})
	return picks, nil
}
