package taskselect

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
)

// AssignState is the incremental variant of CostGreedy: identical unit
// purchases buy for buy (same values, same deterministic tie-break), but
// the per-task round-start unit gains gain^∅(f, cr) = H(O_t) −
// H(O_t|A_{cr,f}) are cached between SelectAssign calls and recomputed
// only for tasks the caller has Invalidated — in the pipeline, the tasks
// whose beliefs the previous round's answers updated. CostGreedy re-scans
// every (task, fact, worker) unit on every buy iteration of every round;
// the state pays that scan once per touched task and orders the buy loop
// through a lazy-deletion max-heap on gain-per-cost instead:
//
//   - The heap seeds from the cached round-start unit gains. A buy only
//     perturbs the gains of its own task (tasks are independent), so that
//     task's remaining units are re-evaluated eagerly — exactly
//     CostGreedy's recompute schedule, for the same ulp-level reasons as
//     SelectionState's eager refresh — and re-pushed with a bumped
//     version; superseded entries are discarded when they surface.
//   - Entries that cost more than the remaining chunk budget are dropped
//     at pop time: within one call the budget only shrinks, so they can
//     never become affordable again. CostGreedy filters the same units
//     out of its scan, which is what keeps the argmax identical.
//   - The crowd-derived pieces (yes-probability table, per-worker costs)
//     are computed once per crowd, and the belief-dependent projection is
//     memoized per task until the task is invalidated.
//
// The caller owns cache coherence exactly as with SelectionState: after
// mutating a task's belief (or its Frozen mask) it must call
// Invalidate(task) before the next SelectAssign. Crowd or problem-shape
// changes reset the state wholesale. Workers > 1 re-scans invalidated
// tasks concurrently. Not safe for concurrent SelectAssign calls.
type AssignState struct {
	// Cost prices one answer from a worker; nil means 1 per answer. Must
	// match across calls — it is sampled per crowd at sync time.
	Cost func(w crowd.Worker) float64
	// MaxAssignsPerTask caps the answer variables accumulated in one task
	// (the enumeration is exponential in them); default 12, as CostGreedy.
	MaxAssignsPerTask int
	// Workers bounds the goroutines of the invalidation re-scan; <= 1
	// means serial.
	Workers int

	// Crowd-derived memos, reset when the crowd signature changes.
	crowdSig string
	ce       crowd.Crowd
	costs    []float64    // cost per worker, crowd order
	pYes     [][2]float64 // P(yes | truth) per worker

	tasks []*assignTaskCache

	// pending holds a cache restored via RestoreCache until the next sync
	// adopts it.
	pending *SelectionCache

	stats engineStats
}

// assignTaskCache holds the belief-derived memos for one task.
type assignTaskCache struct {
	dirty   bool
	entropy float64     // H(O_t)
	base    [][]float64 // round-start gain per [fact][worker]; NaN rows mark frozen facts
	frozen  []bool      // the mask base was computed under
	proj    map[string][]float64
}

// unitRef is one answer unit in crowd-index form: worker indexes the
// synced crowd. Keeping indices rather than Worker values makes the
// dedup and memo lookups allocation-free.
type unitRef struct {
	fact   int
	worker int
}

// NewAssignState returns an empty incremental assignment engine; the
// first SelectAssign populates it for the problem it sees. cost nil
// means unit cost, maxAssignsPerTask <= 0 means 12, workers <= 1 means a
// serial re-scan.
func NewAssignState(cost func(w crowd.Worker) float64, maxAssignsPerTask, workers int) *AssignState {
	return &AssignState{Cost: cost, MaxAssignsPerTask: maxAssignsPerTask, Workers: workers}
}

// Name implements AssignSelector. The engine reports the same name as
// CostGreedy because it is the same algorithm — only the evaluation
// schedule differs.
func (s *AssignState) Name() string { return "CostGreedy" }

// Invalidate marks tasks whose beliefs (or frozen masks) changed since
// the last SelectAssign, forcing their cached unit gains to be
// recomputed. Out-of-range indices are ignored.
func (s *AssignState) Invalidate(tasks ...int) {
	for _, t := range tasks {
		if t >= 0 && t < len(s.tasks) && s.tasks[t] != nil {
			s.tasks[t].dirty = true
		}
	}
}

// InvalidateAll drops every cached unit gain (keeping the crowd memos).
func (s *AssignState) InvalidateAll() {
	for _, tc := range s.tasks {
		if tc != nil {
			tc.dirty = true
		}
	}
}

// costOf applies the configured cost model.
func (s *AssignState) costOf(w crowd.Worker) float64 {
	if s.Cost != nil {
		return s.Cost(w)
	}
	return 1
}

// maxPer resolves the per-task assignment cap.
func (s *AssignState) maxPer() int {
	if s.MaxAssignsPerTask > 0 {
		return s.MaxAssignsPerTask
	}
	return 12
}

// sync aligns the cache with the problem: a crowd or shape change resets
// everything (adopting a pending restored cache when it matches), and a
// frozen-mask drift on a clean task dirties it.
func (s *AssignState) sync(p Problem) {
	sig := crowdSignature(p.Experts)
	if sig != s.crowdSig || len(p.Beliefs) != len(s.tasks) {
		s.crowdSig = sig
		s.ce = p.Experts
		s.pYes = asymYesTable(p.Experts)
		s.costs = make([]float64, len(p.Experts))
		for i, w := range p.Experts {
			s.costs[i] = s.costOf(w)
		}
		s.tasks = make([]*assignTaskCache, len(p.Beliefs))
		s.adoptPending(p)
	}
	s.pending = nil
	for t := range s.tasks {
		if s.tasks[t] == nil {
			s.tasks[t] = &assignTaskCache{dirty: true}
			continue
		}
		tc := s.tasks[t]
		if !tc.dirty && !frozenEqual(tc.frozen, p, t) {
			tc.dirty = true
		}
	}
}

// condEntropy evaluates H(O_t | units) through the memos. It matches
// CondEntropyAssign bitwise for units listed in the same order: the core
// runs the identical arithmetic, only the setup (projection, per-worker
// yes probabilities) comes from cache.
func (s *AssignState) condEntropy(tc *assignTaskCache, d *belief.Dist, units []unitRef) (float64, error) {
	if len(units) == 0 {
		return tc.entropy, nil
	}
	if len(units) > maxFamilyBits {
		return 0, fmt.Errorf("%w: %d answer variables", ErrTooLarge, len(units))
	}
	s.stats.evals.Add(1)
	// Distinct facts in encounter order, then sorted — the same fact list
	// CondEntropyAssign derives, so the projection patterns line up.
	facts := make([]int, 0, len(units))
	seen := make(map[int]bool, len(units))
	for _, u := range units {
		if !seen[u.fact] {
			seen[u.fact] = true
			facts = append(facts, u.fact)
		}
	}
	sort.Ints(facts)
	factPos := make(map[int]int, len(facts))
	for i, f := range facts {
		factPos[f] = i
	}
	q := memoProjection(tc.proj, d, facts)
	pYes := make([][2]float64, len(units))
	pos := make([]int, len(units))
	for i, u := range units {
		pYes[i] = s.pYes[u.worker]
		pos[i] = factPos[u.fact]
	}
	return condEntropyAssignCore(tc.entropy, q, pYes, pos), nil
}

// rescan rebuilds the round-start unit-gain cache of task t.
func (s *AssignState) rescan(ctx context.Context, p Problem, t int) error {
	tc := s.tasks[t]
	d := p.Beliefs[t]
	tc.entropy = d.Entropy()
	tc.proj = make(map[string][]float64)
	m, w := d.NumFacts(), len(s.ce)
	tc.frozen = make([]bool, m)
	tc.base = make([][]float64, m)
	for f := 0; f < m; f++ {
		row := make([]float64, w)
		tc.base[f] = row
		tc.frozen[f] = p.frozen(t, f)
		if tc.frozen[f] {
			for wi := range row {
				row[wi] = math.NaN()
			}
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		for wi := 0; wi < w; wi++ {
			h, err := s.condEntropy(tc, d, []unitRef{{fact: f, worker: wi}})
			if err != nil {
				return err
			}
			row[wi] = tc.entropy - h
		}
	}
	tc.dirty = false
	return nil
}

// assignEntry is one candidate unit in the buy-ordering max-heap;
// version stamps the number of buys its task had when gain was computed
// (lazy deletion, as SelectionState's heapEntry).
type assignEntry struct {
	task, fact, worker int
	gain, cost, ratio  float64
	version            int
}

// assignHeap orders entries by gain-per-cost descending, ties broken by
// ascending (task, fact, worker index) — exactly the first-strict-max
// order of CostGreedy's scan over tasks, facts and the crowd slice,
// which is what makes the two selectors' purchases identical.
type assignHeap []assignEntry

func (h assignHeap) Len() int { return len(h) }
func (h assignHeap) Less(i, j int) bool {
	//hclint:ignore float-eq exact != is the point: the heap must reproduce CostGreedy's first-strict-max scan bit-for-bit, and a tolerance would break comparator transitivity
	if h[i].ratio != h[j].ratio {
		return h[i].ratio > h[j].ratio
	}
	if h[i].task != h[j].task {
		return h[i].task < h[j].task
	}
	if h[i].fact != h[j].fact {
		return h[i].fact < h[j].fact
	}
	return h[i].worker < h[j].worker
}
func (h assignHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *assignHeap) Push(x any)   { *h = append(*h, x.(assignEntry)) }
func (h *assignHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// hasUnit reports whether the unit list already contains (worker, fact).
func hasUnit(units []unitRef, worker, fact int) bool {
	for _, u := range units {
		if u.worker == worker && u.fact == fact {
			return true
		}
	}
	return false
}

// SelectAssign implements AssignSelector. See the type comment for the
// contract; the purchases are identical to CostGreedy.SelectAssign with
// the same cost model on the same problem.
func (s *AssignState) SelectAssign(ctx context.Context, p Problem, budget float64) ([]TaskAssign, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if budget <= 0 {
		return nil, nil
	}
	for _, w := range p.Experts {
		if s.costOf(w) <= 0 {
			return nil, errors.New("taskselect: non-positive worker cost")
		}
	}
	maxPer := s.maxPer()
	s.sync(p)
	s.stats.selects.Add(1)

	// Parallel invalidation re-scan: only dirty tasks pay the O(m·|CE|)
	// unit-gain sweep.
	var dirty []int
	for t, tc := range s.tasks {
		if tc.dirty {
			dirty = append(dirty, t)
		}
	}
	s.stats.rescans.Add(int64(len(dirty)))
	s.stats.reused.Add(int64(len(s.tasks) - len(dirty)))
	if len(dirty) > 0 {
		err := scanAll(ctx, len(dirty), s.Workers, func(i int) error {
			return s.rescan(ctx, p, dirty[i])
		})
		if err != nil {
			return nil, err
		}
	}

	// Seed the heap with every unit's cached round-start gain-per-cost.
	h := make(assignHeap, 0, len(s.tasks)*4)
	for t, tc := range s.tasks {
		for f, row := range tc.base {
			if tc.frozen[f] {
				continue
			}
			for wi, g := range row {
				h = append(h, assignEntry{
					task: t, fact: f, worker: wi,
					gain: g, cost: s.costs[wi], ratio: g / s.costs[wi],
				})
			}
		}
	}
	heap.Init(&h)

	current := make(map[int][]unitRef) // task -> bought units, buy order
	versions := make(map[int]int)
	var picks []TaskAssign
	remaining := budget
	for h.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		top := h[0]
		t := top.task
		if top.version != versions[t] {
			// Superseded by the eager refresh after an earlier buy in this
			// task (or the task hit its assignment cap). Discard.
			heap.Pop(&h)
			continue
		}
		if top.cost > remaining {
			// The chunk budget only shrinks within a call, so the unit can
			// never become affordable again; CostGreedy's affordability
			// filter excludes it the same way.
			heap.Pop(&h)
			continue
		}
		if top.gain <= gainEps {
			// The heap max is current and affordable, so it is exactly the
			// unit CostGreedy's scan would pick — and its gain says stop.
			break
		}
		heap.Pop(&h)
		picks = append(picks, TaskAssign{Task: t, Fact: top.fact, Worker: s.ce[top.worker]})
		current[t] = append(current[t], unitRef{fact: top.fact, worker: top.worker})
		versions[t]++
		remaining -= top.cost
		if remaining <= 0 {
			break
		}
		if len(current[t]) >= maxPer {
			continue // stale entries of t die by version mismatch
		}
		// The enlarged selection's conditional entropy becomes the new
		// gain baseline for task t; eagerly re-evaluate its remaining
		// units on exactly CostGreedy's recompute schedule and supersede
		// their heap entries.
		tc, d := s.tasks[t], p.Beliefs[t]
		nh, err := s.condEntropy(tc, d, current[t])
		if err != nil {
			return nil, err
		}
		for f := 0; f < d.NumFacts(); f++ {
			if tc.frozen[f] {
				continue
			}
			for wi := range s.ce {
				if s.costs[wi] > remaining || hasUnit(current[t], wi, f) {
					continue
				}
				trial := append(append([]unitRef{}, current[t]...), unitRef{fact: f, worker: wi})
				th, err := s.condEntropy(tc, d, trial)
				if err != nil {
					return nil, err
				}
				g := nh - th
				heap.Push(&h, assignEntry{
					task: t, fact: f, worker: wi,
					gain: g, cost: s.costs[wi], ratio: g / s.costs[wi],
					version: versions[t],
				})
			}
		}
	}
	sort.Slice(picks, func(i, j int) bool {
		if picks[i].Task != picks[j].Task {
			return picks[i].Task < picks[j].Task
		}
		if picks[i].Fact != picks[j].Fact {
			return picks[i].Fact < picks[j].Fact
		}
		return picks[i].Worker.ID < picks[j].Worker.ID
	})
	return picks, nil
}
