package taskselect

import (
	"context"
	"fmt"
	"testing"

	"hcrowd/internal/crowd"
	"hcrowd/internal/rngutil"
)

// ablationCost mirrors the pricing of the ablation-cost experiment:
// accuracy buys are progressively more expensive.
func ablationCost(w crowd.Worker) float64 {
	return 1 + 8*(w.Accuracy-0.9)
}

// sameAssigns fails the test unless the two assignment selectors bought
// identical unit sets.
func sameAssigns(t *testing.T, label string, got, want []TaskAssign) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: incremental bought %v, cold bought %v", label, got, want)
	}
	for i := range got {
		if got[i].Task != want[i].Task || got[i].Fact != want[i].Fact || got[i].Worker.ID != want[i].Worker.ID {
			t.Fatalf("%s: buy %d differs: incremental %v, cold %v", label, i, got, want)
		}
	}
}

func assignExperts() crowd.Crowd {
	return crowd.Crowd{
		{ID: "A", Accuracy: 0.91},
		{ID: "B", Accuracy: 0.95},
		{ID: "C", Accuracy: 0.99},
	}
}

func TestAssignStateMatchesCostGreedySingleShot(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 6; seed++ {
		for _, budget := range []float64{1, 3.5, 8, 20} {
			p := randomProblem(t, seed, 4, assignExperts())
			want, err := (CostGreedy{Cost: ablationCost}).SelectAssign(ctx, p, budget)
			if err != nil {
				t.Fatal(err)
			}
			got, err := NewAssignState(ablationCost, 0, 0).SelectAssign(ctx, p, budget)
			if err != nil {
				t.Fatal(err)
			}
			sameAssigns(t, fmt.Sprintf("seed=%d budget=%g", seed, budget), got, want)
		}
	}
}

// TestAssignStateMatchesCostGreedyAcrossRounds is the core equivalence
// property: driven like the cost-aware pipeline drives it (buy, apply the
// bought answers to the touched tasks' beliefs, invalidate, repeat), the
// incremental engine must buy the same units as a cold CostGreedy every
// round.
func TestAssignStateMatchesCostGreedyAcrossRounds(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name    string
		cost    func(crowd.Worker) float64
		workers int
		frozen  bool
	}{
		{"unit-cost-serial", nil, 0, false},
		{"ablation-cost-parallel", ablationCost, 4, false},
		{"with-freezing", ablationCost, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ce := assignExperts()
			p := randomProblem(t, 3, 5, ce)
			if tc.frozen {
				p.Frozen = make([][]bool, len(p.Beliefs))
				for i, d := range p.Beliefs {
					p.Frozen[i] = make([]bool, d.NumFacts())
				}
			}
			state := NewAssignState(tc.cost, 0, tc.workers)
			rng := rngutil.New(77)
			for round := 0; round < 6; round++ {
				want, err := (CostGreedy{Cost: tc.cost}).SelectAssign(ctx, p, 6)
				if err != nil {
					t.Fatal(err)
				}
				got, err := state.SelectAssign(ctx, p, 6)
				if err != nil {
					t.Fatal(err)
				}
				sameAssigns(t, fmt.Sprintf("round %d", round), got, want)
				if len(got) == 0 {
					break
				}
				// Apply one simulated answer family per bought unit, as the
				// pipeline would, then invalidate exactly the touched tasks.
				touched := make(map[int]bool)
				for _, u := range got {
					truth := func(f int) bool { return (u.Task+f)%2 == 0 }
					fam := crowd.SimulateAnswerFamily(rng, crowd.Crowd{u.Worker}, []int{u.Fact}, truth)
					if err := p.Beliefs[u.Task].Update(fam); err != nil {
						t.Fatal(err)
					}
					touched[u.Task] = true
				}
				for task := range touched {
					if tc.frozen && round >= 2 {
						p.Frozen[task][0] = true
					}
					state.Invalidate(task)
				}
			}
		})
	}
}

// TestAssignStateSteadyStateEvals verifies the engine's reason to exist:
// after the cold round, a buy round that touched one task must cost far
// fewer CondEntropyAssign evaluations than a full CostGreedy scan.
func TestAssignStateSteadyStateEvals(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 5, 20, assignExperts())
	state := NewAssignState(ablationCost, 0, 0)
	if _, err := state.SelectAssign(ctx, p, 3); err != nil {
		t.Fatal(err) // cold round pays the full scan
	}

	countRound := func(sel AssignSelector) int64 {
		t.Helper()
		ResetEvalCount()
		picks, err := sel.SelectAssign(ctx, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(picks) == 0 {
			t.Fatal("no units bought")
		}
		return EvalCount()
	}
	full := countRound(CostGreedy{Cost: ablationCost})
	state.Invalidate(0)
	incr := countRound(state)
	if incr*2 > full {
		t.Errorf("steady-state round cost %d evals, cold scan %d — want >=2x fewer", incr, full)
	}
}

// TestAssignStateCrowdChangeResets drives the crowd-swap scenario: a new
// expert crowd must invalidate every crowd-derived memo.
func TestAssignStateCrowdChangeResets(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 9, 4, assignExperts())
	state := NewAssignState(nil, 0, 0)
	if _, err := state.SelectAssign(ctx, p, 4); err != nil {
		t.Fatal(err)
	}
	p.Experts = crowd.Crowd{{ID: "Z", Accuracy: 0.97}}
	want, err := (CostGreedy{}).SelectAssign(ctx, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := state.SelectAssign(ctx, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameAssigns(t, "after crowd swap", got, want)
}

// TestAssignStateFrozenDriftWithoutInvalidate checks the safety net:
// freezing a fact without an explicit Invalidate must still be noticed.
func TestAssignStateFrozenDriftWithoutInvalidate(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 11, 3, assignExperts())
	state := NewAssignState(nil, 0, 0)
	first, err := state.SelectAssign(ctx, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 {
		t.Fatalf("bought %v", first)
	}
	p.Frozen = make([][]bool, len(p.Beliefs))
	for i, d := range p.Beliefs {
		p.Frozen[i] = make([]bool, d.NumFacts())
	}
	p.Frozen[first[0].Task][first[0].Fact] = true
	want, err := (CostGreedy{}).SelectAssign(ctx, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := state.SelectAssign(ctx, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	sameAssigns(t, "after freeze", got, want)
	if got[0].Task == first[0].Task && got[0].Fact == first[0].Fact {
		t.Errorf("frozen fact %v re-bought", first[0])
	}
}

// TestAssignStateMaxPerTaskCap exercises the assignment cap: with one
// task and a tiny cap the engine must stop buying units for it exactly
// where CostGreedy does.
func TestAssignStateMaxPerTaskCap(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 2, 1, assignExperts())
	want, err := (CostGreedy{MaxAssignsPerTask: 2}).SelectAssign(ctx, p, 50)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewAssignState(nil, 2, 0).SelectAssign(ctx, p, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 2 {
		t.Fatalf("cold bought %d units, want the cap of 2", len(want))
	}
	sameAssigns(t, "capped", got, want)
}

// TestAssignStateNonPositiveCost mirrors CostGreedy's validation.
func TestAssignStateNonPositiveCost(t *testing.T) {
	p := randomProblem(t, 1, 2, assignExperts())
	bad := func(crowd.Worker) float64 { return 0 }
	if _, err := NewAssignState(bad, 0, 0).SelectAssign(context.Background(), p, 5); err == nil {
		t.Fatal("zero-cost worker accepted")
	}
}
