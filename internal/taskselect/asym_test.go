package taskselect

import (
	"context"
	"testing"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/rngutil"
)

func asymExperts(rates ...[2]float64) crowd.Crowd {
	c := make(crowd.Crowd, len(rates))
	for i, r := range rates {
		c[i] = crowd.Worker{ID: string(rune('A' + i)), TPR: r[0], TNR: r[1]}
	}
	return c
}

func TestAsymCondEntropyMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rngutil.New(20000 + seed)
		m := 2 + rng.Intn(3)
		d := randomDist(t, seed, m)
		n := 1 + rng.Intn(2)
		rates := make([][2]float64, n)
		for i := range rates {
			rates[i] = [2]float64{0.5 + 0.5*rng.Float64(), 0.5 + 0.5*rng.Float64()}
		}
		ce := asymExperts(rates...)
		size := 1 + rng.Intn(m)
		facts := rng.Perm(m)[:size]

		fast, err := CondEntropy(d, ce, facts)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := CondEntropyNaive(d, ce, facts)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(fast, naive, 1e-9) {
			t.Errorf("seed %d: asym fast %v != naive %v (m=%d rates=%v)", seed, fast, naive, m, rates)
		}
	}
}

func TestAsymEqualsSymmetricWhenRatesMatch(t *testing.T) {
	// TPR == TNR == a must reproduce the symmetric evaluator exactly.
	d := tableIDist(t)
	for _, a := range []float64{0.6, 0.8, 0.95} {
		sym := experts(a)
		asym := asymExperts([2]float64{a, a})
		for _, facts := range [][]int{{0}, {1, 2}, {0, 1, 2}} {
			hs, err := CondEntropy(d, sym, facts)
			if err != nil {
				t.Fatal(err)
			}
			ha, err := CondEntropy(d, asym, facts)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(hs, ha, 1e-12) {
				t.Errorf("a=%v T=%v: sym %v != asym %v", a, facts, hs, ha)
			}
		}
	}
}

func TestAsymInformationNeverHurts(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		d := randomDist(t, 21000+seed, 3)
		ce := asymExperts([2]float64{0.95, 0.55}, [2]float64{0.6, 0.9})
		for _, facts := range [][]int{{0}, {0, 2}, {0, 1, 2}} {
			h, err := CondEntropy(d, ce, facts)
			if err != nil {
				t.Fatal(err)
			}
			if h < 0 || h > d.Entropy()+1e-9 {
				t.Errorf("seed %d T=%v: H=%v outside [0, %v]", seed, facts, h, d.Entropy())
			}
		}
	}
}

func TestAsymTheorem1Identity(t *testing.T) {
	// The brute-force Definition 5 expectation must match under the
	// confusion model too.
	d := randomDist(t, 77, 3)
	ce := asymExperts([2]float64{0.9, 0.6})
	facts := []int{0, 1}
	s := len(facts)

	var expQ float64
	for famIdx := 0; famIdx < 4; famIdx++ {
		vals := make([]bool, s)
		for j := 0; j < s; j++ {
			vals[j] = famIdx&(1<<uint(j)) != 0
		}
		fam := crowd.AnswerFamily{{Worker: ce[0], Facts: facts, Values: vals}}
		pA, err := d.AnswerFamilyProb(fam)
		if err != nil {
			t.Fatal(err)
		}
		if pA == 0 {
			continue
		}
		post := d.Clone()
		if err := post.Update(fam); err != nil {
			t.Fatal(err)
		}
		expQ += pA * post.Quality()
	}
	bruteGain := expQ - d.Quality()
	gain, err := QualityGain(d, ce, facts)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gain, bruteGain, 1e-9) {
		t.Errorf("asym Theorem 1: %v != %v", gain, bruteGain)
	}
}

func TestAsymGreedySelection(t *testing.T) {
	// A one-sided expert (great at confirming true facts, poor at
	// refuting) still drives valid greedy selection.
	p := Problem{
		Beliefs: []*belief.Dist{randomDist(t, 88, 4)},
		Experts: asymExperts([2]float64{0.98, 0.55}),
	}
	picks, err := Greedy{}.Select(context.Background(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 2 {
		t.Fatalf("picks = %v", picks)
	}
	h, err := p.Objective(context.Background(), picks)
	if err != nil {
		t.Fatal(err)
	}
	if h > p.Beliefs[0].Entropy() {
		t.Error("asym greedy selection increased objective")
	}
}
