package taskselect

import (
	"fmt"
	"math"
)

// CacheVersion is the serialized selection-cache format version.
const CacheVersion = 1

// Cache kinds identify which incremental engine wrote a SelectionCache;
// restoring into the other engine fails (and the pipeline degrades to a
// cold start rather than guessing).
const (
	// CacheKindGreedy marks a SelectionState (uniform Algorithm 2) cache.
	CacheKindGreedy = "greedy"
	// CacheKindAssign marks an AssignState (per-unit cost-aware) cache.
	CacheKindAssign = "assign"
)

// SelectionCache is the serializable round-start state of an incremental
// selection engine: the per-task gain tables that survive between rounds.
// Exported from a running state with ExportCache and fed back with
// RestoreCache, it lets a resumed checking loop skip the full re-scan for
// every task whose belief the interrupted run had already cached — a warm
// resume performs zero full-rescan rounds on unchanged tasks. The cache
// is advisory: a crowd or shape mismatch at restore time silently falls
// back to a cold scan, and the picks are identical either way (the cached
// values are bitwise the ones a cold scan would recompute).
type SelectionCache struct {
	Version  int    `json:"version"`
	Kind     string `json:"kind"`
	CrowdSig string `json:"crowd_sig"`
	// Tasks is indexed like Problem.Beliefs.
	Tasks []TaskGainCache `json:"tasks"`
}

// TaskGainCache holds one task's cached round-start gains.
type TaskGainCache struct {
	// Dirty marks a task whose gains were stale at export (its belief
	// changed after the last scan); it re-scans on first use after
	// restore and the table fields are absent.
	Dirty bool `json:"dirty,omitempty"`
	// Entropy is H(O_t) of the belief the gains were computed under.
	Entropy float64 `json:"entropy,omitempty"`
	// Gains is the per-fact round-start gain table of the uniform engine
	// (CacheKindGreedy). Frozen facts carry 0 here — NaN, the in-memory
	// marker, is not valid JSON — and are identified by Frozen.
	Gains []float64 `json:"gains,omitempty"`
	// UnitGains is the per-fact, per-worker (crowd order) gain table of
	// the assignment engine (CacheKindAssign); frozen rows carry 0.
	UnitGains [][]float64 `json:"unit_gains,omitempty"`
	// Frozen is the stopping-rule mask the gains were computed under.
	Frozen []bool `json:"frozen,omitempty"`
}

// Validate checks the cache's internal consistency (kind, version, table
// shapes). Shape checks against a concrete problem happen at adoption.
func (c *SelectionCache) Validate() error {
	if c.Version != CacheVersion {
		return fmt.Errorf("taskselect: selection-cache version %d, support %d", c.Version, CacheVersion)
	}
	if c.Kind != CacheKindGreedy && c.Kind != CacheKindAssign {
		return fmt.Errorf("taskselect: unknown selection-cache kind %q", c.Kind)
	}
	for t := range c.Tasks {
		tg := &c.Tasks[t]
		if tg.Dirty {
			continue
		}
		n := len(tg.Gains)
		if c.Kind == CacheKindAssign {
			n = len(tg.UnitGains)
		}
		if tg.Frozen != nil && len(tg.Frozen) != n {
			return fmt.Errorf("taskselect: selection-cache task %d frozen mask covers %d of %d facts", t, len(tg.Frozen), n)
		}
	}
	return nil
}

// ExportCache snapshots the state's per-task gain caches for
// serialization (e.g. into a pipeline checkpoint). Tasks invalidated
// since the last Select export as dirty placeholders. Returns nil when
// the state has never synced to a problem.
func (s *SelectionState) ExportCache() *SelectionCache {
	if len(s.tasks) == 0 {
		return nil
	}
	c := &SelectionCache{
		Version:  CacheVersion,
		Kind:     CacheKindGreedy,
		CrowdSig: s.crowdSig,
		Tasks:    make([]TaskGainCache, len(s.tasks)),
	}
	for t, tc := range s.tasks {
		if tc == nil || tc.dirty {
			c.Tasks[t] = TaskGainCache{Dirty: true}
			continue
		}
		gains := make([]float64, len(tc.gains))
		for f, g := range tc.gains {
			if !math.IsNaN(g) {
				gains[f] = g
			}
		}
		c.Tasks[t] = TaskGainCache{
			Entropy: tc.entropy,
			Gains:   gains,
			Frozen:  append([]bool{}, tc.frozen...),
		}
	}
	return c
}

// RestoreCache primes the state with a cache exported by ExportCache.
// Adoption is deferred to the next Select: the crowd memos are
// recomputed there, and the per-task gains are taken over only when the
// cache's crowd signature and shape match the live problem — otherwise
// the tasks re-scan cold. Restoring a cache of the wrong kind errors.
func (s *SelectionState) RestoreCache(c *SelectionCache) error {
	if c == nil {
		return nil
	}
	if err := c.Validate(); err != nil {
		return err
	}
	if c.Kind != CacheKindGreedy {
		return fmt.Errorf("taskselect: selection-cache kind %q, want %q", c.Kind, CacheKindGreedy)
	}
	s.pending = c
	return nil
}

// adoptPending installs the pending cache's clean tasks into the freshly
// reset task table; called from sync after a crowd/shape reset.
func (s *SelectionState) adoptPending(p Problem) {
	pc := s.pending
	if pc == nil || pc.CrowdSig != s.crowdSig || len(pc.Tasks) != len(p.Beliefs) {
		return
	}
	for t := range pc.Tasks {
		tg := &pc.Tasks[t]
		m := p.Beliefs[t].NumFacts()
		if tg.Dirty || len(tg.Gains) != m {
			continue
		}
		tc := &taskCache{
			entropy:   tg.Entropy,
			gains:     restoreGainRow(tg.Gains, tg.Frozen),
			frozen:    restoreFrozen(tg.Frozen, m),
			anyFrozen: anyTrue(tg.Frozen),
		}
		tc.bestFact, tc.bestGain = gainRowBest(tc.gains)
		s.tasks[t] = tc
	}
}

// restoreGainRow rebuilds an in-memory gain row from its serialized
// form, re-marking frozen entries with NaN.
func restoreGainRow(gains []float64, frozen []bool) []float64 {
	out := make([]float64, len(gains))
	copy(out, gains)
	for f := range out {
		if f < len(frozen) && frozen[f] {
			out[f] = math.NaN()
		}
	}
	return out
}

// restoreFrozen clones a serialized frozen mask, padding to m facts (an
// omitted mask freezes nothing).
func restoreFrozen(frozen []bool, m int) []bool {
	out := make([]bool, m)
	copy(out, frozen)
	return out
}

// anyTrue reports whether any entry of a frozen mask is set.
func anyTrue(mask []bool) bool {
	for _, v := range mask {
		if v {
			return true
		}
	}
	return false
}

// ExportCache snapshots the assignment engine's per-task unit-gain
// caches; see (*SelectionState).ExportCache for the contract.
func (s *AssignState) ExportCache() *SelectionCache {
	if len(s.tasks) == 0 {
		return nil
	}
	c := &SelectionCache{
		Version:  CacheVersion,
		Kind:     CacheKindAssign,
		CrowdSig: s.crowdSig,
		Tasks:    make([]TaskGainCache, len(s.tasks)),
	}
	for t, tc := range s.tasks {
		if tc == nil || tc.dirty {
			c.Tasks[t] = TaskGainCache{Dirty: true}
			continue
		}
		ug := make([][]float64, len(tc.base))
		for f, row := range tc.base {
			r := make([]float64, len(row))
			for wi, g := range row {
				if !math.IsNaN(g) {
					r[wi] = g
				}
			}
			ug[f] = r
		}
		c.Tasks[t] = TaskGainCache{
			Entropy:   tc.entropy,
			UnitGains: ug,
			Frozen:    append([]bool{}, tc.frozen...),
		}
	}
	return c
}

// RestoreCache primes the assignment engine with a cache exported by its
// ExportCache; see (*SelectionState).RestoreCache for the contract.
func (s *AssignState) RestoreCache(c *SelectionCache) error {
	if c == nil {
		return nil
	}
	if err := c.Validate(); err != nil {
		return err
	}
	if c.Kind != CacheKindAssign {
		return fmt.Errorf("taskselect: selection-cache kind %q, want %q", c.Kind, CacheKindAssign)
	}
	s.pending = c
	return nil
}

// adoptPending installs the pending cache's clean tasks after a reset;
// the assignment-engine counterpart of (*SelectionState).adoptPending.
func (s *AssignState) adoptPending(p Problem) {
	pc := s.pending
	if pc == nil || pc.CrowdSig != s.crowdSig || len(pc.Tasks) != len(p.Beliefs) {
		return
	}
	for t := range pc.Tasks {
		tg := &pc.Tasks[t]
		m := p.Beliefs[t].NumFacts()
		if tg.Dirty || len(tg.UnitGains) != m {
			continue
		}
		base := make([][]float64, m)
		ok := true
		for f, row := range tg.UnitGains {
			if len(row) != len(s.ce) {
				ok = false
				break
			}
			frozenF := f < len(tg.Frozen) && tg.Frozen[f]
			r := make([]float64, len(row))
			copy(r, row)
			if frozenF {
				for wi := range r {
					r[wi] = math.NaN()
				}
			}
			base[f] = r
		}
		if !ok {
			continue
		}
		tc := &assignTaskCache{
			entropy:   tg.Entropy,
			base:      base,
			frozen:    restoreFrozen(tg.Frozen, m),
			anyFrozen: anyTrue(tg.Frozen),
			proj:      make(map[string][]float64),
		}
		tc.bestFact, tc.bestWorker, tc.bestGain, tc.bestCost, tc.bestRatio =
			rowBest(tc.base, s.costs, math.Inf(1))
		s.tasks[t] = tc
	}
}

// compile-time interface checks for the incremental engines.
var (
	_ Selector       = (*SelectionState)(nil)
	_ AssignSelector = CostGreedy{}
	_ AssignSelector = (*AssignState)(nil)
)
