package taskselect

import (
	"context"
	"encoding/json"
	"testing"
)

// warmSelectionState runs a state to steady state and exports its cache.
func warmSelectionState(t *testing.T, ctx context.Context, p Problem) *SelectionCache {
	t.Helper()
	state := NewSelectionState(0)
	if _, err := state.Select(ctx, p, 2); err != nil {
		t.Fatal(err)
	}
	c := state.ExportCache()
	if c == nil {
		t.Fatal("warm state exported nil cache")
	}
	return c
}

// TestSelectionCacheRoundTripWarm is the warm-restore property for the
// uniform engine: a fresh state restored from a serialized cache must
// pick identically to the live state without re-scanning any clean task.
func TestSelectionCacheRoundTripWarm(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 4, 6, experts(0.85, 0.95))
	c := warmSelectionState(t, ctx, p)

	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back SelectionCache
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}

	want, err := (Greedy{}).Select(ctx, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewSelectionState(0)
	if err := warm.RestoreCache(&back); err != nil {
		t.Fatal(err)
	}
	ResetEvalCount()
	got, err := warm.Select(ctx, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	warmEvals := EvalCount()
	samePicks(t, "warm restore", got, want)

	ResetEvalCount()
	if _, err := NewSelectionState(0).Select(ctx, p, 2); err != nil {
		t.Fatal(err)
	}
	coldEvals := EvalCount()
	// The warm state skips the initial full scan entirely; only the eager
	// per-pick refreshes remain.
	if warmEvals*2 > coldEvals {
		t.Errorf("warm restore cost %d evals, cold %d — want >=2x fewer", warmEvals, coldEvals)
	}
}

// TestAssignCacheRoundTripWarm is the same property for the assignment
// engine.
func TestAssignCacheRoundTripWarm(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 8, 6, assignExperts())
	live := NewAssignState(ablationCost, 0, 0)
	if _, err := live.SelectAssign(ctx, p, 4); err != nil {
		t.Fatal(err)
	}
	c := live.ExportCache()
	if c == nil {
		t.Fatal("warm state exported nil cache")
	}
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back SelectionCache
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}

	want, err := (CostGreedy{Cost: ablationCost}).SelectAssign(ctx, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewAssignState(ablationCost, 0, 0)
	if err := warm.RestoreCache(&back); err != nil {
		t.Fatal(err)
	}
	ResetEvalCount()
	got, err := warm.SelectAssign(ctx, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	warmEvals := EvalCount()
	sameAssigns(t, "warm restore", got, want)

	ResetEvalCount()
	if _, err := NewAssignState(ablationCost, 0, 0).SelectAssign(ctx, p, 4); err != nil {
		t.Fatal(err)
	}
	coldEvals := EvalCount()
	if warmEvals*2 > coldEvals {
		t.Errorf("warm restore cost %d evals, cold %d — want >=2x fewer", warmEvals, coldEvals)
	}
}

// TestSelectionCacheDirtyTasksRescan: tasks exported as dirty re-scan on
// first use and the picks still match.
func TestSelectionCacheDirtyTasksRescan(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 6, 5, experts(0.85, 0.95))
	state := NewSelectionState(0)
	if _, err := state.Select(ctx, p, 2); err != nil {
		t.Fatal(err)
	}
	state.Invalidate(1, 3)
	c := state.ExportCache()
	if !c.Tasks[1].Dirty || !c.Tasks[3].Dirty {
		t.Fatalf("invalidated tasks exported clean: %+v", c.Tasks)
	}
	warm := NewSelectionState(0)
	if err := warm.RestoreCache(c); err != nil {
		t.Fatal(err)
	}
	want, err := (Greedy{}).Select(ctx, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Select(ctx, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	samePicks(t, "dirty tasks", got, want)
}

// TestSelectionCacheMismatchFallsBackCold: a cache from a different crowd
// or shape is ignored, not trusted.
func TestSelectionCacheMismatchFallsBackCold(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 4, 6, experts(0.85, 0.95))
	c := warmSelectionState(t, ctx, p)

	other := p
	other.Experts = experts(0.7, 0.99)
	want, err := (Greedy{}).Select(ctx, other, 2)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewSelectionState(0)
	if err := warm.RestoreCache(c); err != nil {
		t.Fatal(err)
	}
	got, err := warm.Select(ctx, other, 2)
	if err != nil {
		t.Fatal(err)
	}
	samePicks(t, "crowd mismatch", got, want)
}

// TestSelectionCacheKindMismatch: restoring a cache into the wrong engine
// errors rather than guessing.
func TestSelectionCacheKindMismatch(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 4, 3, assignExperts())
	g := warmSelectionState(t, ctx, p)
	if err := NewAssignState(nil, 0, 0).RestoreCache(g); err == nil {
		t.Error("assign engine accepted a greedy cache")
	}
	a := NewAssignState(nil, 0, 0)
	if _, err := a.SelectAssign(ctx, p, 2); err != nil {
		t.Fatal(err)
	}
	if err := NewSelectionState(0).RestoreCache(a.ExportCache()); err == nil {
		t.Error("greedy engine accepted an assign cache")
	}
}

// TestSelectionCacheValidate covers the structural checks.
func TestSelectionCacheValidate(t *testing.T) {
	cases := []struct {
		name string
		c    SelectionCache
		ok   bool
	}{
		{"good", SelectionCache{Version: CacheVersion, Kind: CacheKindGreedy}, true},
		{"bad-version", SelectionCache{Version: 99, Kind: CacheKindGreedy}, false},
		{"bad-kind", SelectionCache{Version: CacheVersion, Kind: "mystery"}, false},
		{"frozen-shape", SelectionCache{Version: CacheVersion, Kind: CacheKindGreedy,
			Tasks: []TaskGainCache{{Gains: []float64{1, 2}, Frozen: []bool{true}}}}, false},
		{"dirty-skips-shape", SelectionCache{Version: CacheVersion, Kind: CacheKindGreedy,
			Tasks: []TaskGainCache{{Dirty: true, Frozen: []bool{true}}}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("invalid cache accepted")
			}
		})
	}
	var s SelectionState
	if err := s.RestoreCache(nil); err != nil {
		t.Errorf("nil cache: %v", err)
	}
	if s.ExportCache() != nil {
		t.Error("never-synced state exported a cache")
	}
}
