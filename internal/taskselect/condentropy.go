// Package taskselect implements the paper's core optimization: selecting
// checking tasks for the expert crowd. Theorem 1 reduces maximizing the
// expected quality improvement ΔQ(F|T) to minimizing the conditional
// entropy H(O | AS^T_CE) of the observations given the crowdsourced answer
// families for the query set T (Theorem 2); the exact problem is NP-hard
// (Theorem 3), so the package provides the greedy (1-1/e) approximation of
// Algorithm 2 next to the exact brute-force selector and two baselines.
package taskselect

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/mathx"
)

// evalCount tracks how many conditional-entropy evaluations (the 2^(s·w)
// answer-family enumerations) have run. It is the package's cost unit: the
// incremental-selection benchmarks compare engines by evaluations per
// round, which is hardware-independent, rather than by wall clock.
var evalCount atomic.Int64

// EvalCount returns the number of conditional-entropy evaluations
// performed since the last ResetEvalCount. Safe for concurrent use.
func EvalCount() int64 { return evalCount.Load() }

// ResetEvalCount zeroes the evaluation counter.
func ResetEvalCount() { evalCount.Store(0) }

// maxFamilyBits caps the answer-family enumeration 2^(|T|·|CE|); above
// this the exact conditional entropy is deliberately refused rather than
// silently running for hours (the paper's Table III "timeout" regime).
const maxFamilyBits = 26

var (
	// ErrNoExperts is returned when the expert crowd CE is empty: with no
	// checkers the answer family is empty and selection is undefined.
	ErrNoExperts = errors.New("taskselect: expert crowd is empty")
	// ErrTooLarge is returned when 2^(|T|·|CE|) answer families exceed the
	// enumeration cap.
	ErrTooLarge = errors.New("taskselect: answer-family space too large to enumerate")
)

// validateQuerySet checks the query facts are in-range and distinct.
func validateQuerySet(d *belief.Dist, facts []int) error {
	for _, f := range facts {
		if f < 0 || f >= d.NumFacts() {
			return fmt.Errorf("taskselect: fact %d outside task with %d facts", f, d.NumFacts())
		}
	}
	if f, dup := duplicateFact(facts, d.NumFacts()); dup {
		return fmt.Errorf("taskselect: duplicate fact %d in query set", f)
	}
	return nil
}

// duplicateFact reports the first fact index appearing twice in facts.
// All entries must be in [0, numFacts). A []bool table replaces the old
// single-int bitmask, whose `1 << f` is defined as 0 in Go for f ≥ 64 —
// duplicates past index 63 sailed through undetected.
func duplicateFact(facts []int, numFacts int) (int, bool) {
	var stack [64]bool
	seen := stack[:]
	if numFacts > len(stack) {
		seen = make([]bool, numFacts)
	} else {
		seen = seen[:numFacts]
	}
	for _, f := range facts {
		if seen[f] {
			return f, true
		}
		seen[f] = true
	}
	return 0, false
}

// projection returns q, the marginal distribution of the belief on the
// query facts: q[p] = sum of P(o) over observations o whose truth values
// on facts (in the given order) spell the bit pattern p.
func projection(d *belief.Dist, facts []int) []float64 {
	return projectionInto(nil, d, facts)
}

// likelihoodTables precomputes, for every expert, the answer-pattern
// likelihood indexed by Hamming distance: table[cr][d] =
// Pr_cr^(s-d) · (1-Pr_cr)^d, the Lemma 1 likelihood of an answer pattern
// disagreeing with the true pattern on exactly d of the s queries.
func likelihoodTables(ce crowd.Crowd, s int) [][]float64 {
	tables := make([][]float64, len(ce))
	for i, w := range ce {
		// tab[d] = pr^(s-d) * er^d, computed by direct powers so that an
		// oracle worker (pr == 1, er == 0) is exact rather than 0/0.
		tab := make([]float64, s+1)
		pr, er := w.Accuracy, 1-w.Accuracy
		for d := 0; d <= s; d++ {
			v := 1.0
			for t := 0; t < s-d; t++ {
				v *= pr
			}
			for t := 0; t < d; t++ {
				v *= er
			}
			tab[d] = v
		}
		tables[i] = tab
	}
	return tables
}

// CondEntropy computes H(O | AS^T_CE) of Equation 34 for the query set
// `facts` (local indices into the task belief d) and expert crowd ce.
//
// It uses the identity H(O|AS) = H(O) − H(AS) + H(AS|O) with
// H(AS|O) = |T| · Σ_cr h(Pr_cr): the answers depend on the observation
// only through its projection onto T, and given that pattern every answer
// is an independent Bernoulli with the worker's accuracy. This removes the
// 2^m factor from the family enumeration; CondEntropyNaive retains the
// textbook form and the tests assert both agree.
func CondEntropy(d *belief.Dist, ce crowd.Crowd, facts []int) (float64, error) {
	if len(ce) == 0 {
		return 0, ErrNoExperts
	}
	if err := validateQuerySet(d, facts); err != nil {
		return 0, err
	}
	if len(facts) == 0 {
		return d.Entropy(), nil
	}
	s := len(facts)
	w := len(ce)
	if s*w > maxFamilyBits {
		return 0, fmt.Errorf("%w: |T|=%d × |CE|=%d", ErrTooLarge, s, w)
	}
	for _, wk := range ce {
		if wk.Asymmetric() {
			return condEntropyAsym(d, ce, facts)
		}
	}
	q := projection(d, facts)
	tables := likelihoodTables(ce, s)
	return condEntropySymCore(d.Entropy(), q, tables, symAnswerEntropy(ce), s, w), nil
}

// symAnswerEntropy returns Σ_cr h(Pr_cr), the per-query answer entropy of
// a symmetric crowd. It depends only on the crowd, so the incremental
// engine computes it once per run.
func symAnswerEntropy(ce crowd.Crowd) float64 {
	var h float64
	for _, wk := range ce {
		h += mathx.BernoulliEntropy(wk.Accuracy)
	}
	return h
}

// Batched-enumeration size window. Both family-entropy paths compute the
// identical floats (see the symFamilyEntropyBatch comment), so the
// threshold is purely a performance knob: below minBatchFam the batch
// path's buffer setup outweighs its fused loops (the rescans' singleton
// query sets live here), above maxBatchFam the 2^(s·w) accumulation
// vector would claim tens of megabytes, so the constant-space scalar
// sweep takes over up to the maxFamilyBits refusal.
const (
	minBatchFam = 16
	maxBatchFam = 1 << 20
)

// coreScratch holds the batched family enumeration's working vectors: the
// per-family accumulator pAs, the ping-pong tensor buffers ta/tb, the
// per-variable factor vector v, and the per-variable Bernoulli entropy
// table hB. Pool-managed so steady-state evaluations allocate nothing.
type coreScratch struct {
	pAs, ta, tb, v []float64
	hB             [][2]float64
}

var corePool = sync.Pool{New: func() any { return new(coreScratch) }}

// condEntropySymCore evaluates H(O|AS) for a symmetric crowd from the
// precomputed pieces: the task entropy H(O), the projection q of the
// belief onto the s query facts, the Hamming-distance likelihood tables,
// and the crowd's per-query answer entropy. Splitting the evaluation from
// the setup lets SelectionState memoize the crowd tables across calls;
// the arithmetic is identical to the inline form, so memoized and fresh
// evaluations agree bitwise.
func condEntropySymCore(entropy float64, q []float64, tables [][]float64, hPerQuery float64, s, w int) float64 {
	evalCount.Add(1)

	// H(AS): enumerate every family (one s-bit answer pattern per expert).
	var hAS float64
	if nFam := 1 << uint(s*w); nFam >= minBatchFam && nFam <= maxBatchFam {
		hAS = symFamilyEntropyBatch(q, tables, s, w)
	} else {
		hAS = symFamilyEntropyScalar(q, tables, s, w)
	}

	// H(AS|O) = s · Σ_cr h(Pr_cr).
	hASgivenO := hPerQuery * float64(s)

	h := entropy - hAS + hASgivenO
	if h < 0 { // rounding: conditional entropy is non-negative
		h = 0
	}
	return h
}

// symFamilyEntropyScalar is the constant-space family sweep: for every
// family (one s-bit answer pattern per expert) it accumulates P(A) over
// the projection patterns and folds -XLogX(P(A)) into H(AS).
func symFamilyEntropyScalar(q []float64, tables [][]float64, s, w int) float64 {
	var hAS float64
	nFam := 1 << uint(s*w)
	if s == 1 {
		// Single-query specialization of the sweep below — the dominant
		// shape in the incremental engines' round-start rescans. Each
		// expert's answer pattern is one bit, so the Hamming distance is
		// the XOR bit itself; the multiply chain is unchanged, so the
		// result is bitwise the general sweep's.
		for fam := 0; fam < nFam; fam++ {
			var pA float64
			for p, qp := range q {
				if qp == 0 {
					continue
				}
				like := qp
				for cr := 0; cr < w; cr++ {
					like *= tables[cr][((fam>>uint(cr))&1)^p]
				}
				pA += like
			}
			hAS -= mathx.XLogX(pA)
		}
		return hAS
	}
	mask := (1 << uint(s)) - 1
	for fam := 0; fam < nFam; fam++ {
		var pA float64
		for p, qp := range q {
			if qp == 0 {
				continue
			}
			like := qp
			for cr := 0; cr < w; cr++ {
				a := (fam >> uint(cr*s)) & mask
				like *= tables[cr][bits.OnesCount(uint(a^p))]
			}
			pA += like
		}
		hAS -= mathx.XLogX(pA)
	}
	return hAS
}

// symFamilyEntropyBatch computes the same H(AS) with the loops swapped:
// patterns outside, families expanded as a tensor product. For each
// projection pattern p it builds the per-expert factor vector v[a] =
// table[popcount(a^p)], expands Π_cr v_cr(a_cr) by repeated OuterMul
// (expert cr's answer pattern occupies bits [cr·s, (cr+1)·s) of the
// family index, so each expansion puts the new factors in the high bits),
// adds the expanded vector into the per-family accumulator, and finally
// folds the whole accumulator through EntropySum.
//
// Bitwise identity with the scalar sweep: every family's product chain
// t_{w-1}·(…·(t_0·qp)) equals the scalar ((qp·t_0)·…)·t_{w-1} because
// IEEE-754 multiplication is commutative per operation and the chain
// shapes match; AddTo visits patterns in the same ascending order the
// scalar sweep sums them; EntropySum is the scalar `hAS -= XLogX(pA)`
// loop. The batch form does ~w× fewer multiplies and runs on contiguous
// vectors instead of per-family bit arithmetic.
func symFamilyEntropyBatch(q []float64, tables [][]float64, s, w int) float64 {
	sc := corePool.Get().(*coreScratch)
	nFam := 1 << uint(s*w)
	nPat := 1 << uint(s)
	sc.pAs = growFloats(sc.pAs, nFam)
	sc.ta = growFloats(sc.ta, nFam)
	sc.tb = growFloats(sc.tb, nFam)
	sc.v = growFloats(sc.v, nPat)
	pAs, v := sc.pAs, sc.v
	for i := range pAs {
		pAs[i] = 0
	}
	for p, qp := range q {
		if qp == 0 {
			continue
		}
		spare := sc.tb
		cur := sc.ta[:1]
		cur[0] = qp
		for cr := 0; cr < w; cr++ {
			tab := tables[cr]
			for a := 0; a < nPat; a++ {
				v[a] = tab[bits.OnesCount(uint(a^p))]
			}
			dst := spare[:nPat*len(cur)]
			mathx.OuterMul(dst, v, cur)
			spare = cur[:cap(cur)]
			cur = dst
		}
		mathx.AddTo(pAs, cur)
	}
	hAS := mathx.EntropySum(pAs)
	corePool.Put(sc)
	return hAS
}

// condEntropyAsym is the confusion-model variant of the optimized
// evaluator. The projection identity still holds — answers depend on the
// observation only through its pattern on T — but the per-answer terms
// are class-conditional (TPR/TNR), so the Hamming-distance tables are
// replaced by per-position factors and H(AS|O) becomes pattern-dependent:
// H(AS|O) = Σ_p q(p) Σ_cr Σ_j h(P(yes | p_j)).
func condEntropyAsym(d *belief.Dist, ce crowd.Crowd, facts []int) (float64, error) {
	q := projection(d, facts)
	return condEntropyAsymCore(d.Entropy(), q, asymYesTable(ce), len(facts), len(ce)), nil
}

// asymYesTable returns pYes[cr][tv]: P(worker cr answers Yes | fact truth
// tv). It depends only on the crowd, so the incremental engine computes it
// once per run.
func asymYesTable(ce crowd.Crowd) [][2]float64 {
	pYes := make([][2]float64, len(ce))
	for cr, wk := range ce {
		pYes[cr][1] = wk.PCorrect(true)      // TPR
		pYes[cr][0] = 1 - wk.PCorrect(false) // 1 - TNR
	}
	return pYes
}

// condEntropyAsymCore is the evaluation half of condEntropyAsym, split out
// (like condEntropySymCore) so the per-worker yes probabilities can be
// memoized by the incremental engine. Both family paths group each
// worker's per-query factors into one subproduct before folding it into
// the likelihood chain, so scalar and batch agree bitwise.
func condEntropyAsymCore(entropy float64, q []float64, pYes [][2]float64, s, w int) float64 {
	evalCount.Add(1)

	var hAS float64
	if nFam := 1 << uint(s*w); nFam >= minBatchFam && nFam <= maxBatchFam {
		hAS = asymFamilyEntropyBatch(q, pYes, s, w)
	} else {
		hAS = asymFamilyEntropyScalar(q, pYes, s, w)
	}

	// H(AS|O) = Σ_p q(p) Σ_cr Σ_j h(P(yes | p_j)); the per-(worker, truth)
	// Bernoulli entropies are computed once up front.
	sc := corePool.Get().(*coreScratch)
	sc.hB = growPairs(sc.hB, w)
	hB := sc.hB
	for cr := 0; cr < w; cr++ {
		hB[cr][0] = mathx.BernoulliEntropy(pYes[cr][0])
		hB[cr][1] = mathx.BernoulliEntropy(pYes[cr][1])
	}
	var hASgivenO float64
	for p, qp := range q {
		if qp == 0 {
			continue
		}
		var hp float64
		for cr := 0; cr < w; cr++ {
			for j := 0; j < s; j++ {
				hp += hB[cr][(p>>uint(j))&1]
			}
		}
		hASgivenO += qp * hp
	}
	corePool.Put(sc)

	h := entropy - hAS + hASgivenO
	if h < 0 {
		h = 0
	}
	return h
}

// asymFamilyEntropyScalar is the constant-space family sweep of the
// confusion-model H(AS). Each worker's s per-query factors accumulate
// into a subproduct of their own before multiplying the likelihood —
// the association the batch path's per-worker factor vectors use.
func asymFamilyEntropyScalar(q []float64, pYes [][2]float64, s, w int) float64 {
	var hAS float64
	nFam := 1 << uint(s*w)
	mask := (1 << uint(s)) - 1
	for fam := 0; fam < nFam; fam++ {
		var pA float64
		for p, qp := range q {
			if qp == 0 {
				continue
			}
			like := qp
			for cr := 0; cr < w; cr++ {
				a := (fam >> uint(cr*s)) & mask
				sub := 1.0
				for j := 0; j < s; j++ {
					tv := (p >> uint(j)) & 1
					py := pYes[cr][tv]
					if a&(1<<uint(j)) != 0 {
						sub *= py
					} else {
						sub *= 1 - py
					}
				}
				like *= sub
			}
			pA += like
		}
		hAS -= mathx.XLogX(pA)
	}
	return hAS
}

// asymFamilyEntropyBatch is symFamilyEntropyBatch for the confusion
// model: the per-expert factor vector over answer patterns is built by
// progressive doubling in query order (v[a] = Π_j f_j(a_j), the scalar
// subproduct's chain shape), then expanded across experts by OuterMul
// exactly as the symmetric path.
func asymFamilyEntropyBatch(q []float64, pYes [][2]float64, s, w int) float64 {
	sc := corePool.Get().(*coreScratch)
	nFam := 1 << uint(s*w)
	nPat := 1 << uint(s)
	sc.pAs = growFloats(sc.pAs, nFam)
	sc.ta = growFloats(sc.ta, nFam)
	sc.tb = growFloats(sc.tb, nFam)
	sc.v = growFloats(sc.v, nPat)
	pAs, v := sc.pAs, sc.v
	for i := range pAs {
		pAs[i] = 0
	}
	for p, qp := range q {
		if qp == 0 {
			continue
		}
		spare := sc.tb
		cur := sc.ta[:1]
		cur[0] = qp
		for cr := 0; cr < w; cr++ {
			// v[a] = Π_j (a_j ? P(yes|p_j) : 1-P(yes|p_j)) by doubling.
			v[0] = 1
			size := 1
			for j := 0; j < s; j++ {
				py := pYes[cr][(p>>uint(j))&1]
				no := 1 - py
				for i := 0; i < size; i++ {
					vi := v[i]
					v[size+i] = py * vi
					v[i] = no * vi
				}
				size <<= 1
			}
			dst := spare[:nPat*len(cur)]
			mathx.OuterMul(dst, v, cur)
			spare = cur[:cap(cur)]
			cur = dst
		}
		mathx.AddTo(pAs, cur)
	}
	hAS := mathx.EntropySum(pAs)
	corePool.Put(sc)
	return hAS
}

// CondEntropyNaive computes H(O | AS^T_CE) directly from the definition:
// for every possible answer family it forms the Bayesian posterior over
// all observations and accumulates P(A)·H(O|A). It is exponentially more
// expensive than CondEntropy (extra 2^m factor) and exists as the
// reference implementation for tests and the naive-vs-fast ablation bench.
func CondEntropyNaive(d *belief.Dist, ce crowd.Crowd, facts []int) (float64, error) {
	if len(ce) == 0 {
		return 0, ErrNoExperts
	}
	if err := validateQuerySet(d, facts); err != nil {
		return 0, err
	}
	if len(facts) == 0 {
		return d.Entropy(), nil
	}
	s := len(facts)
	w := len(ce)
	if s*w > maxFamilyBits {
		return 0, fmt.Errorf("%w: |T|=%d × |CE|=%d", ErrTooLarge, s, w)
	}
	nFam := 1 << uint(s*w)
	mask := (1 << uint(s)) - 1
	nObs := d.NumObservations()
	post := make([]float64, nObs)
	var h float64
	for fam := 0; fam < nFam; fam++ {
		var pA float64
		for o := 0; o < nObs; o++ {
			po := d.P(o)
			if po == 0 {
				post[o] = 0
				continue
			}
			// Project o onto the query facts.
			p := 0
			for j, f := range facts {
				if belief.Models(o, f) {
					p |= 1 << uint(j)
				}
			}
			like := po
			for cr := 0; cr < w; cr++ {
				a := (fam >> uint(cr*s)) & mask
				for j := 0; j < s; j++ {
					tv := p&(1<<uint(j)) != 0
					pc := ce[cr].PCorrect(tv)
					if (a&(1<<uint(j)) != 0) == tv {
						like *= pc
					} else {
						like *= 1 - pc
					}
				}
			}
			post[o] = like
			pA += like
		}
		if pA == 0 {
			continue
		}
		// P(A) · H(O|A) = -Σ_o P(o,A) ln (P(o,A)/P(A)).
		for _, v := range post {
			if v == 0 {
				continue
			}
			h -= v * (mathx.Log(v) - mathx.Log(pA))
		}
	}
	if h < 0 {
		h = 0
	}
	return h, nil
}

// QualityGain returns the expected quality improvement of Theorem 1,
// ΔQ(F|T) = H(O) − H(O | AS^T_CE); it is non-negative (information never
// hurts in expectation).
func QualityGain(d *belief.Dist, ce crowd.Crowd, facts []int) (float64, error) {
	h, err := CondEntropy(d, ce, facts)
	if err != nil {
		return 0, err
	}
	g := d.Entropy() - h
	if g < 0 {
		g = 0
	}
	return g, nil
}

// ExpectedQuality returns Q(F|T) of Definition 5: the expectation over all
// answer families of the posterior quality. By Theorem 1 it equals
// Q(F) + ΔQ(F|T); the tests verify the identity by brute force.
func ExpectedQuality(d *belief.Dist, ce crowd.Crowd, facts []int) (float64, error) {
	g, err := QualityGain(d, ce, facts)
	if err != nil {
		return 0, err
	}
	return d.Quality() + g, nil
}
