package taskselect

import (
	"math"
	"testing"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/rngutil"
)

var tableI = []float64{0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18}

func tableIDist(t *testing.T) *belief.Dist {
	t.Helper()
	d, err := belief.FromJoint(tableI)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

// randomDist builds a random joint belief over m facts.
func randomDist(t *testing.T, seed int64, m int) *belief.Dist {
	t.Helper()
	rng := rngutil.New(seed)
	raw := make([]float64, 1<<uint(m))
	for i := range raw {
		raw[i] = rng.Float64() + 1e-4
	}
	d, err := belief.FromJoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func experts(accs ...float64) crowd.Crowd {
	c := make(crowd.Crowd, len(accs))
	for i, a := range accs {
		c[i] = crowd.Worker{ID: string(rune('A' + i)), Accuracy: a}
	}
	return c
}

func TestCondEntropyEmptyQuerySet(t *testing.T) {
	d := tableIDist(t)
	h, err := CondEntropy(d, experts(0.9), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h, d.Entropy(), 1e-12) {
		t.Errorf("H(O|∅) = %v, want H(O) = %v", h, d.Entropy())
	}
}

func TestCondEntropyMatchesNaive(t *testing.T) {
	// The optimized identity-based evaluator must agree with the
	// direct-from-definition evaluator on random instances.
	for seed := int64(0); seed < 25; seed++ {
		rng := rngutil.New(1000 + seed)
		m := 2 + rng.Intn(3) // 2..4 facts
		d := randomDist(t, seed, m)
		nExperts := 1 + rng.Intn(2)
		accs := make([]float64, nExperts)
		for i := range accs {
			accs[i] = 0.5 + 0.5*rng.Float64()
		}
		ce := experts(accs...)
		// Random query subset of size 1..m.
		s := 1 + rng.Intn(m)
		perm := rng.Perm(m)
		facts := perm[:s]

		fast, err := CondEntropy(d, ce, facts)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := CondEntropyNaive(d, ce, facts)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(fast, naive, 1e-9) {
			t.Errorf("seed %d: fast %v != naive %v (m=%d, |T|=%d, CE=%v)",
				seed, fast, naive, m, s, accs)
		}
	}
}

func TestCondEntropyNeverExceedsPrior(t *testing.T) {
	// Conditioning on answers cannot increase entropy in expectation.
	for seed := int64(0); seed < 20; seed++ {
		d := randomDist(t, 2000+seed, 3)
		ce := experts(0.7, 0.92)
		for _, facts := range [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {0, 1, 2}} {
			h, err := CondEntropy(d, ce, facts)
			if err != nil {
				t.Fatal(err)
			}
			if h > d.Entropy()+1e-9 {
				t.Errorf("seed %d T=%v: H(O|AS)=%v > H(O)=%v", seed, facts, h, d.Entropy())
			}
		}
	}
}

func TestCondEntropyMonotoneInQuerySet(t *testing.T) {
	// Adding a query can only (weakly) decrease the conditional entropy.
	d := tableIDist(t)
	ce := experts(0.85, 0.95)
	h1, _ := CondEntropy(d, ce, []int{0})
	h2, _ := CondEntropy(d, ce, []int{0, 1})
	h3, _ := CondEntropy(d, ce, []int{0, 1, 2})
	if h2 > h1+1e-12 || h3 > h2+1e-12 {
		t.Errorf("not monotone: %v, %v, %v", h1, h2, h3)
	}
}

func TestCondEntropyOracleRevealsMarginal(t *testing.T) {
	// A single oracle answering fact f removes exactly the marginal
	// entropy of f: H(O|AS^{f}) = H(O) − h(P(f)).
	d := tableIDist(t)
	oracle := experts(1.0)
	for f := 0; f < 3; f++ {
		h, err := CondEntropy(d, oracle, []int{f})
		if err != nil {
			t.Fatal(err)
		}
		want := d.Entropy() - d.FactEntropy(f)
		if !almostEqual(h, want, 1e-9) {
			t.Errorf("fact %d: H(O|oracle) = %v, want %v", f, h, want)
		}
	}
}

func TestCondEntropyNeutralExpertNoGain(t *testing.T) {
	// A 0.5-accuracy expert's answers are pure noise: no entropy reduction.
	d := tableIDist(t)
	h, err := CondEntropy(d, experts(0.5), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h, d.Entropy(), 1e-9) {
		t.Errorf("H(O|noise) = %v, want H(O) = %v", h, d.Entropy())
	}
	g, _ := QualityGain(d, experts(0.5), []int{0, 1})
	if g > 1e-9 {
		t.Errorf("gain from noise = %v, want 0", g)
	}
}

func TestCondEntropyMoreAccurateExpertGainsMore(t *testing.T) {
	d := tableIDist(t)
	var prev = math.Inf(1)
	for _, acc := range []float64{0.55, 0.7, 0.85, 0.95, 1.0} {
		h, err := CondEntropy(d, experts(acc), []int{0, 2})
		if err != nil {
			t.Fatal(err)
		}
		if h > prev+1e-12 {
			t.Errorf("accuracy %v did not reduce entropy further: %v > %v", acc, h, prev)
		}
		prev = h
	}
}

func TestCondEntropyMoreExpertsGainMore(t *testing.T) {
	d := tableIDist(t)
	h1, _ := CondEntropy(d, experts(0.8), []int{1})
	h2, _ := CondEntropy(d, experts(0.8, 0.8), []int{1})
	h3, _ := CondEntropy(d, experts(0.8, 0.8, 0.8), []int{1})
	if !(h3 < h2 && h2 < h1) {
		t.Errorf("redundant experts do not help: %v, %v, %v", h1, h2, h3)
	}
}

func TestTheorem1Identity(t *testing.T) {
	// ΔQ(F|T) computed through the conditional-entropy identity must match
	// the brute-force Definition 5 expectation Σ_A P(A)·Q(F|A) − Q(F).
	for seed := int64(0); seed < 10; seed++ {
		d := randomDist(t, 3000+seed, 3)
		ce := experts(0.8, 0.93)
		facts := []int{0, 2}
		s := len(facts)
		w := len(ce)

		var expQ float64
		nFam := 1 << uint(s*w)
		mask := (1 << uint(s)) - 1
		for famIdx := 0; famIdx < nFam; famIdx++ {
			fam := make(crowd.AnswerFamily, w)
			for cr := 0; cr < w; cr++ {
				a := (famIdx >> uint(cr*s)) & mask
				vals := make([]bool, s)
				for j := 0; j < s; j++ {
					vals[j] = a&(1<<uint(j)) != 0
				}
				fam[cr] = crowd.AnswerSet{Worker: ce[cr], Facts: facts, Values: vals}
			}
			pA, err := d.AnswerFamilyProb(fam)
			if err != nil {
				t.Fatal(err)
			}
			if pA == 0 {
				continue
			}
			post := d.Clone()
			if err := post.Update(fam); err != nil {
				t.Fatal(err)
			}
			expQ += pA * post.Quality()
		}
		bruteGain := expQ - d.Quality()

		gain, err := QualityGain(d, ce, facts)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(gain, bruteGain, 1e-9) {
			t.Errorf("seed %d: Theorem 1 gain %v != brute force %v", seed, gain, bruteGain)
		}
		eq, err := ExpectedQuality(d, ce, facts)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(eq, expQ, 1e-9) {
			t.Errorf("seed %d: ExpectedQuality %v != brute force %v", seed, eq, expQ)
		}
	}
}

func TestCondEntropyErrors(t *testing.T) {
	d := tableIDist(t)
	if _, err := CondEntropy(d, nil, []int{0}); err == nil {
		t.Error("empty expert crowd accepted")
	}
	if _, err := CondEntropy(d, experts(0.9), []int{7}); err == nil {
		t.Error("out-of-range fact accepted")
	}
	if _, err := CondEntropy(d, experts(0.9), []int{0, 0}); err == nil {
		t.Error("duplicate fact accepted")
	}
	// |T|·|CE| over the enumeration cap.
	big := experts(0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9)
	if _, err := CondEntropy(d, big, []int{0, 1, 2}); err == nil {
		t.Error("oversized family space accepted")
	}
	if _, err := CondEntropyNaive(d, big, []int{0, 1, 2}); err == nil {
		t.Error("naive: oversized family space accepted")
	}
}

func TestQualityGainNonNegative(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		d := randomDist(t, 4000+seed, 4)
		rng := rngutil.New(5000 + seed)
		ce := experts(0.5+0.5*rng.Float64(), 0.5+0.5*rng.Float64())
		facts := []int{rng.Intn(4)}
		g, err := QualityGain(d, ce, facts)
		if err != nil {
			t.Fatal(err)
		}
		if g < 0 {
			t.Errorf("seed %d: negative gain %v", seed, g)
		}
	}
}

func TestCondEntropySubmodularity(t *testing.T) {
	// Diminishing returns: gain of adding f to a smaller set is at least
	// the gain of adding it to a superset. This is the property the
	// (1−1/e) greedy guarantee rests on (§III-C).
	for seed := int64(0); seed < 15; seed++ {
		d := randomDist(t, 6000+seed, 4)
		ce := experts(0.88, 0.95)
		hEmpty := d.Entropy()
		h3, _ := CondEntropy(d, ce, []int{3})
		h03, _ := CondEntropy(d, ce, []int{0, 3})
		h0, _ := CondEntropy(d, ce, []int{0})
		gainSmall := hEmpty - h3 // adding 3 to ∅
		gainLarge := h0 - h03    // adding 3 to {0}
		if gainLarge > gainSmall+1e-9 {
			t.Errorf("seed %d: submodularity violated: %v > %v", seed, gainLarge, gainSmall)
		}
	}
}
