package taskselect

import (
	"context"
	"fmt"
	"math"
	"testing"

	"hcrowd/internal/crowd"
	"hcrowd/internal/rngutil"
)

// randFamilyQ builds a normalized projection-like vector over 2^s
// patterns with a few exact zeros, as real projections have.
func randFamilyQ(seed int64, s int) []float64 {
	rng := rngutil.New(seed)
	q := make([]float64, 1<<uint(s))
	var sum float64
	for i := range q {
		if rng.Intn(5) == 0 {
			continue // exact zero: exercises the qp == 0 skip
		}
		q[i] = rng.Float64() + 1e-6
		sum += q[i]
	}
	for i := range q {
		q[i] /= sum
	}
	return q
}

// TestSymFamilyEntropyBatchBitwiseScalar pins the tentpole contract: the
// batched tensor-product family sweep must agree with the scalar sweep
// bit for bit, at sizes on both sides of the minBatchFam dispatch
// threshold, so the threshold stays a pure performance knob.
func TestSymFamilyEntropyBatchBitwiseScalar(t *testing.T) {
	cases := []struct{ s, w int }{
		{1, 2}, // 4 families: below the dispatch threshold
		{2, 2}, // 16
		{3, 2}, // 64: exactly minBatchFam
		{2, 4}, // 256
		{4, 3}, // 4096
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("s=%d_w=%d", tc.s, tc.w), func(t *testing.T) {
			accs := []float64{0.8, 0.88, 0.93, 0.97}[:tc.w]
			tables := likelihoodTables(experts(accs...), tc.s)
			for seed := int64(0); seed < 4; seed++ {
				q := randFamilyQ(seed, tc.s)
				scalar := symFamilyEntropyScalar(q, tables, tc.s, tc.w)
				batch := symFamilyEntropyBatch(q, tables, tc.s, tc.w)
				if math.Float64bits(scalar) != math.Float64bits(batch) {
					t.Fatalf("seed %d: scalar %v (%x) != batch %v (%x)",
						seed, scalar, math.Float64bits(scalar), batch, math.Float64bits(batch))
				}
			}
		})
	}
}

// TestAsymFamilyEntropyBatchBitwiseScalar is the confusion-model twin:
// the scalar sweep groups each worker's per-query factors into a
// subproduct with the same chain shape as the batch path's
// progressive-doubling factor vectors, so the two agree bitwise.
func TestAsymFamilyEntropyBatchBitwiseScalar(t *testing.T) {
	ce := crowd.Crowd{
		{ID: "A", TPR: 0.9, TNR: 0.75},
		{ID: "B", TPR: 0.82, TNR: 0.95},
		{ID: "C", TPR: 0.97, TNR: 0.88},
	}
	pYes := asymYesTable(ce)
	cases := []struct{ s, w int }{
		{1, 2}, // 4 families
		{2, 3}, // 64: exactly minBatchFam
		{3, 3}, // 512
		{4, 2}, // 256
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("s=%d_w=%d", tc.s, tc.w), func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				q := randFamilyQ(seed+10, tc.s)
				scalar := asymFamilyEntropyScalar(q, pYes[:tc.w], tc.s, tc.w)
				batch := asymFamilyEntropyBatch(q, pYes[:tc.w], tc.s, tc.w)
				if math.Float64bits(scalar) != math.Float64bits(batch) {
					t.Fatalf("seed %d: scalar %v != batch %v", seed, scalar, batch)
				}
			}
		})
	}
}

// TestAssignFamilyEntropyBatchBitwiseScalar covers the per-unit
// assignment enumeration, where each answer variable contributes a
// two-point factor vector.
func TestAssignFamilyEntropyBatchBitwiseScalar(t *testing.T) {
	for _, n := range []int{2, 5, 6, 9} { // 4 .. 512 families, straddling 64
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rngutil.New(int64(n))
			for seed := int64(0); seed < 4; seed++ {
				s := 3
				q := randFamilyQ(seed+20, s)
				pYes := make([][2]float64, n)
				pos := make([]int, n)
				for i := range pYes {
					pYes[i][0] = 0.05 + 0.4*rng.Float64()
					pYes[i][1] = 0.55 + 0.4*rng.Float64()
					pos[i] = rng.Intn(s)
				}
				scalar := assignFamilyEntropyScalar(q, pYes, pos)
				batch := assignFamilyEntropyBatch(q, pYes, pos)
				if math.Float64bits(scalar) != math.Float64bits(batch) {
					t.Fatalf("seed %d: scalar %v != batch %v", seed, scalar, batch)
				}
			}
		})
	}
}

// TestProjKeyDistinguishesLargeFactIndices is the regression test for the
// projection-memo cache key: the old single-byte-per-fact encoding
// truncated indices ≥ 256, so fact sets {0} and {256} (or {1,2} and
// {1,258}) collided and could serve the wrong cached projection.
func TestProjKeyDistinguishesLargeFactIndices(t *testing.T) {
	collisions := [][2][]int{
		{{0}, {256}},       // 256 & 0xff == 0
		{{1, 2}, {1, 258}}, // 258 & 0xff == 2
		{{300}, {44}},      // 300 & 0xff == 44
	}
	for _, pair := range collisions {
		a := string(projKey(nil, pair[0]))
		b := string(projKey(nil, pair[1]))
		if a == b {
			t.Errorf("projKey collides for %v and %v", pair[0], pair[1])
		}
	}
	// Same facts must still produce the same key, including through a
	// reused buffer.
	buf := projKey(nil, []int{7, 300})
	if string(projKey(buf[:0], []int{7, 300})) != string(buf) {
		t.Error("projKey not stable across buffer reuse")
	}
}

// TestDuplicateFactBeyond64 is the regression test for query-set
// validation: the old int bitmask wrapped for fact indices ≥ 64
// (1<<70 == 1<<6 on 64-bit ints), hiding duplicates and inventing
// phantom ones.
func TestDuplicateFactBeyond64(t *testing.T) {
	if f, dup := duplicateFact([]int{70, 3, 70}, 128); !dup || f != 70 {
		t.Errorf("duplicateFact([70 3 70]) = (%d, %v), want (70, true)", f, dup)
	}
	// 70 and 6 collided under the 64-bit wrap (70 % 64 == 6).
	if f, dup := duplicateFact([]int{70, 6}, 128); dup {
		t.Errorf("duplicateFact([70 6]) reported phantom duplicate %d", f)
	}
	if _, dup := duplicateFact([]int{0, 1, 2, 63}, 64); dup {
		t.Error("duplicateFact flagged a distinct small set")
	}
}

// TestSelectionStateParallelRefillMatchesGreedy drives the parallel
// post-pick refill hard: few tasks and a large k force several picks into
// the same task each round, so every round runs multiple Workers>1
// refills on the asymmetric-crowd evaluation path. Run under -race by
// `make race`.
func TestSelectionStateParallelRefillMatchesGreedy(t *testing.T) {
	ctx := context.Background()
	ce := crowd.Crowd{
		{ID: "A", TPR: 0.9, TNR: 0.8},
		{ID: "B", TPR: 0.85, TNR: 0.95},
	}
	p := randomProblem(t, 11, 2, ce)
	state := NewSelectionState(4)
	rng := rngutil.New(42)
	for round := 0; round < 5; round++ {
		want, err := (Greedy{Workers: 4}).Select(ctx, p, 6)
		if err != nil {
			t.Fatal(err)
		}
		got, err := state.Select(ctx, p, 6)
		if err != nil {
			t.Fatal(err)
		}
		samePicks(t, fmt.Sprintf("round %d", round), got, want)
		if len(got) == 0 {
			break
		}
		byTask := make(map[int][]int)
		for _, c := range got {
			byTask[c.Task] = append(byTask[c.Task], c.Fact)
		}
		for task, facts := range byTask {
			truth := func(f int) bool { return (task+f)%2 == 0 }
			fam := crowd.SimulateAnswerFamily(rng, ce, facts, truth)
			if err := p.Beliefs[task].Update(fam); err != nil {
				t.Fatal(err)
			}
			state.Invalidate(task)
		}
	}
}

// TestAssignStateParallelRefillMatchesCostGreedy is the assignment-engine
// counterpart: a budget large enough for repeated buys in the same task
// exercises the parallel unit refill and the lazy affordability re-scan.
func TestAssignStateParallelRefillMatchesCostGreedy(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 9, 2, assignExperts())
	state := NewAssignState(ablationCost, 0, 4)
	rng := rngutil.New(42)
	for round := 0; round < 4; round++ {
		want, err := (CostGreedy{Cost: ablationCost}).SelectAssign(ctx, p, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := state.SelectAssign(ctx, p, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameAssigns(t, fmt.Sprintf("round %d", round), got, want)
		if len(got) == 0 {
			break
		}
		touched := make(map[int]bool)
		for _, u := range got {
			truth := func(f int) bool { return (u.Task+f)%2 == 0 }
			fam := crowd.SimulateAnswerFamily(rng, crowd.Crowd{u.Worker}, []int{u.Fact}, truth)
			if err := p.Beliefs[u.Task].Update(fam); err != nil {
				t.Fatal(err)
			}
			touched[u.Task] = true
		}
		for task := range touched {
			state.Invalidate(task)
		}
	}
}

// TestIncrementalSelectionDeterministicGivenSeed runs two independent
// parallel-engine drives of the same seeded problem and demands
// identical pick sequences — goroutine scheduling must not leak into the
// output. The name keeps it inside the -count=2 determinism suite.
func TestIncrementalSelectionDeterministicGivenSeed(t *testing.T) {
	ctx := context.Background()
	drive := func() ([]string, []string) {
		ce := crowd.Crowd{
			{ID: "A", TPR: 0.9, TNR: 0.8},
			{ID: "B", TPR: 0.85, TNR: 0.95},
		}
		p := randomProblem(t, 21, 3, ce)
		pa := randomProblem(t, 22, 3, assignExperts())
		sel := NewSelectionState(4)
		asn := NewAssignState(ablationCost, 0, 4)
		rng := rngutil.New(5)
		var picks, buys []string
		for round := 0; round < 4; round++ {
			got, err := sel.Select(ctx, p, 4)
			if err != nil {
				t.Fatal(err)
			}
			picks = append(picks, fmt.Sprint(got))
			for _, c := range got {
				truth := func(f int) bool { return (c.Task+f)%2 == 0 }
				fam := crowd.SimulateAnswerFamily(rng, ce, []int{c.Fact}, truth)
				if err := p.Beliefs[c.Task].Update(fam); err != nil {
					t.Fatal(err)
				}
				sel.Invalidate(c.Task)
			}
			bought, err := asn.SelectAssign(ctx, pa, 5)
			if err != nil {
				t.Fatal(err)
			}
			buys = append(buys, fmt.Sprint(bought))
			for _, u := range bought {
				truth := func(f int) bool { return (u.Task+f)%2 == 0 }
				fam := crowd.SimulateAnswerFamily(rng, crowd.Crowd{u.Worker}, []int{u.Fact}, truth)
				if err := pa.Beliefs[u.Task].Update(fam); err != nil {
					t.Fatal(err)
				}
				asn.Invalidate(u.Task)
			}
		}
		return picks, buys
	}
	p1, b1 := drive()
	p2, b2 := drive()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Errorf("selection round %d diverged:\n  %s\n  %s", i, p1[i], p2[i])
		}
		if b1[i] != b2[i] {
			t.Errorf("assignment round %d diverged:\n  %s\n  %s", i, b1[i], b2[i])
		}
	}
}
