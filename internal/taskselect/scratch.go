package taskselect

import (
	"encoding/binary"
	"sync"

	"hcrowd/internal/belief"
)

// evalScratch bundles the per-evaluation working buffers of the
// incremental engines: the projection vector q, the query-set fact list,
// and the per-unit tables of the assignment evaluator. One scratch serves
// one evaluation at a time; the pool hands each goroutine of the parallel
// refill its own. Pooling only recycles capacity — every buffer is
// re-filled before use — so reuse cannot perturb results.
type evalScratch struct {
	q     []float64
	facts []int
	pyes  [][2]float64
	pos   []int
	units []unitRef
	key   []byte
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

func getScratch() *evalScratch  { return scratchPool.Get().(*evalScratch) }
func putScratch(s *evalScratch) { scratchPool.Put(s) }

// growFloats returns s with length exactly n, reusing its backing array
// when the capacity allows. Contents are unspecified; callers overwrite.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInts is growFloats for int slices.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growBools is growFloats for bool slices.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// growPairs is growFloats for [2]float64 slices.
func growPairs(s [][2]float64, n int) [][2]float64 {
	if cap(s) < n {
		return make([][2]float64, n)
	}
	return s[:n]
}

// growRows returns a [m][w]float64 table, reusing outer and inner
// capacity when possible. Row contents are unspecified.
func growRows(rows [][]float64, m, w int) [][]float64 {
	if cap(rows) < m {
		next := make([][]float64, m)
		copy(next, rows)
		rows = next
	} else {
		rows = rows[:m]
	}
	for f := range rows {
		rows[f] = growFloats(rows[f], w)
	}
	return rows
}

// projectionInto computes the belief's marginal on the ordered fact list
// into q (resized as needed) and returns it. It accumulates observations
// in the same order as projection, so the two agree bitwise.
func projectionInto(q []float64, d *belief.Dist, facts []int) []float64 {
	s := len(facts)
	q = growFloats(q, 1<<uint(s))
	for i := range q {
		q[i] = 0
	}
	for o := 0; o < d.NumObservations(); o++ {
		po := d.P(o)
		if po == 0 {
			continue
		}
		p := 0
		for j, f := range facts {
			if belief.Models(o, f) {
				p |= 1 << uint(j)
			}
		}
		q[p] += po
	}
	return q
}

// projKey appends a self-delimiting encoding of the fact list to buf and
// returns it — the projection-memo key. Varint-encoding each index keeps
// the key collision-free for fact indices of any size; the previous
// single-byte encoding truncated indices ≥ 256 onto each other and could
// serve the wrong task projection.
func projKey(buf []byte, facts []int) []byte {
	for _, f := range facts {
		buf = binary.AppendUvarint(buf, uint64(f))
	}
	return buf
}
