package taskselect

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"sync"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
)

// Candidate identifies one checking query: fact Fact (local index) of task
// Task in a multi-task problem.
type Candidate struct {
	Task int
	Fact int
}

// Problem is a checking-task selection instance: the current belief of
// every task plus the expert crowd that will answer. Tasks are mutually
// independent (the observation distribution of the data set is the product
// over tasks), which is what lets the conditional entropy objective
// decompose additively across tasks.
type Problem struct {
	Beliefs []*belief.Dist
	Experts crowd.Crowd
	// Frozen optionally masks facts out of the candidate pool (for
	// example once the stopping rule of Abraham et al. [38] fires for a
	// fact); Frozen[t][f] == true removes fact f of task t. A nil outer
	// or inner slice freezes nothing.
	Frozen [][]bool
}

// frozen reports whether fact f of task t is masked out.
func (p Problem) frozen(t, f int) bool {
	return p.Frozen != nil && t < len(p.Frozen) && p.Frozen[t] != nil && f < len(p.Frozen[t]) && p.Frozen[t][f]
}

// Validate checks the problem is well formed.
func (p Problem) Validate() error {
	if len(p.Beliefs) == 0 {
		return errors.New("taskselect: problem has no tasks")
	}
	for i, d := range p.Beliefs {
		if d == nil {
			return fmt.Errorf("taskselect: task %d belief is nil", i)
		}
	}
	if len(p.Experts) == 0 {
		return ErrNoExperts
	}
	return p.Experts.Validate()
}

// NumFacts returns the total number of candidate facts across all tasks.
func (p Problem) NumFacts() int {
	n := 0
	for _, d := range p.Beliefs {
		n += d.NumFacts()
	}
	return n
}

// Objective evaluates the global objective Σ_t H(O_t | AS^{T_t}) for a
// query set grouped per task. Tasks with no selected fact contribute their
// unconditional entropy H(O_t).
func (p Problem) Objective(ctx context.Context, picks []Candidate) (float64, error) {
	perTask := make(map[int][]int)
	for _, c := range picks {
		if c.Task < 0 || c.Task >= len(p.Beliefs) {
			return 0, fmt.Errorf("taskselect: candidate task %d out of range", c.Task)
		}
		perTask[c.Task] = append(perTask[c.Task], c.Fact)
	}
	var total float64
	for t, d := range p.Beliefs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		sel := perTask[t]
		if len(sel) == 0 {
			total += d.Entropy()
			continue
		}
		h, err := CondEntropy(d, p.Experts, sel)
		if err != nil {
			return 0, err
		}
		total += h
	}
	return total, nil
}

// Selector chooses up to k checking queries for the expert crowd. A
// selector may return fewer than k candidates when further queries cannot
// improve the expected quality (Algorithm 2 line 4) or when the problem
// has fewer than k facts.
type Selector interface {
	// Name identifies the selector in experiment output ("Approx", "OPT",
	// "Random", "MaxEntropy").
	Name() string
	Select(ctx context.Context, p Problem, k int) ([]Candidate, error)
}

// gainEps is the tolerance below which a marginal gain counts as zero; in
// exact arithmetic conditioning can never increase entropy, so only
// rounding noise lands below it.
const gainEps = 1e-12

// Greedy is the approximate selector of Algorithm 2: it adds the fact with
// the largest marginal quality gain gain^T(f) = H(O|AS^T) − H(O|AS^T∪{f})
// until k facts are selected or no fact improves the objective. Because
// tasks are independent, the marginal gain of a fact depends only on the
// facts already selected in the same task, so gains are cached per
// candidate and only the winning task's gains are recomputed after each
// pick. The greedy solution is within (1−1/e) of optimal by the
// submodularity of conditional entropy.
//
// Workers > 1 evaluates the initial per-task gain scan concurrently —
// the dominant cost on many-task datasets; the pick loop itself stays
// sequential because each pick only invalidates one task.
type Greedy struct {
	Workers int
}

// Name implements Selector.
func (Greedy) Name() string { return "Approx" }

// Select implements Selector.
func (g Greedy) Select(ctx context.Context, p Problem, k int) ([]Candidate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	type cand struct {
		c    Candidate
		gain float64
	}
	selected := make(map[int][]int) // task -> chosen local facts
	baseH := make([]float64, len(p.Beliefs))
	for t, d := range p.Beliefs {
		baseH[t] = d.Entropy() // H(O_t | AS^∅) = H(O_t)
	}
	// gains[t] holds the current marginal gain of every unchosen fact of
	// task t given selected[t].
	gains := make([][]cand, len(p.Beliefs))
	recompute := func(t int) error {
		d := p.Beliefs[t]
		sel := selected[t]
		gains[t] = gains[t][:0]
		// A []bool set rather than an int bitmask: shifting by fact indices
		// ≥ 64 would silently wrap and drop chosen facts from the mask.
		chosen := make([]bool, d.NumFacts())
		for _, f := range sel {
			chosen[f] = true
		}
		for f := 0; f < d.NumFacts(); f++ {
			if chosen[f] || p.frozen(t, f) {
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			h, err := CondEntropy(d, p.Experts, append(append([]int{}, sel...), f))
			if err != nil {
				return err
			}
			gains[t] = append(gains[t], cand{Candidate{t, f}, baseH[t] - h})
		}
		return nil
	}
	if err := scanAll(ctx, len(p.Beliefs), g.Workers, recompute); err != nil {
		return nil, err
	}
	var picks []Candidate
	for len(picks) < k {
		best := cand{gain: math.Inf(-1)}
		for _, tg := range gains {
			for _, c := range tg {
				if c.gain > best.gain {
					best = c
				}
			}
		}
		if math.IsInf(best.gain, -1) {
			break // no candidates left
		}
		if best.gain <= gainEps {
			break // Algorithm 2 line 4: no further expected improvement
		}
		picks = append(picks, best.c)
		t := best.c.Task
		selected[t] = append(selected[t], best.c.Fact)
		if len(picks) == k {
			break // no further pick reads the recomputed gains
		}
		// The conditional entropy with the enlarged selection becomes the
		// new baseline for task t's marginal gains.
		h, err := CondEntropy(p.Beliefs[t], p.Experts, selected[t])
		if err != nil {
			return nil, err
		}
		baseH[t] = h
		if err := recompute(t); err != nil {
			return nil, err
		}
	}
	sortCandidates(picks)
	return picks, nil
}

// Exact is the OPT selector: brute-force enumeration of every size-k
// subset of facts, minimizing the global conditional entropy. Its cost is
// C(N, k) objective evaluations and it honors ctx cancellation so the
// efficiency experiment (Table III) can impose the paper's timeout.
type Exact struct{}

// Name implements Selector.
func (Exact) Name() string { return "OPT" }

// Select implements Selector.
func (Exact) Select(ctx context.Context, p Problem, k int) ([]Candidate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	var all []Candidate
	for t, d := range p.Beliefs {
		for f := 0; f < d.NumFacts(); f++ {
			if p.frozen(t, f) {
				continue
			}
			all = append(all, Candidate{t, f})
		}
	}
	if k > len(all) {
		k = len(all)
	}
	if k == 0 {
		return nil, nil
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	bestH := math.Inf(1)
	best := make([]Candidate, k)
	subset := make([]Candidate, k)
	for {
		for i, j := range idx {
			subset[i] = all[j]
		}
		h, err := p.Objective(ctx, subset)
		if err != nil {
			return nil, err
		}
		if h < bestH {
			bestH = h
			copy(best, subset)
		}
		// Advance the combination (lexicographic).
		i := k - 1
		for i >= 0 && idx[i] == len(all)-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	sortCandidates(best)
	return best, nil
}

// Random selects k distinct facts uniformly at random; it is the paper's
// "Random" baseline for Figure 5.
type Random struct {
	Rng *rand.Rand
}

// Name implements Selector.
func (Random) Name() string { return "Random" }

// Select implements Selector.
func (r Random) Select(ctx context.Context, p Problem, k int) ([]Candidate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if r.Rng == nil {
		return nil, errors.New("taskselect: Random selector needs an Rng")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var all []Candidate
	for t, d := range p.Beliefs {
		for f := 0; f < d.NumFacts(); f++ {
			if p.frozen(t, f) {
				continue
			}
			all = append(all, Candidate{t, f})
		}
	}
	r.Rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if k > len(all) {
		k = len(all)
	}
	picks := append([]Candidate{}, all[:k]...)
	sortCandidates(picks)
	return picks, nil
}

// MaxEntropy selects the k facts with the largest marginal Bernoulli
// entropy. It is the trivial optimal policy for the special case of one
// query per round answered by a single worker (the related-work [41]
// setting the paper discusses) and serves as a cheap heuristic baseline.
type MaxEntropy struct{}

// Name implements Selector.
func (MaxEntropy) Name() string { return "MaxEntropy" }

// Select implements Selector.
func (MaxEntropy) Select(ctx context.Context, p Problem, k int) ([]Candidate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type scored struct {
		c Candidate
		h float64
	}
	var all []scored
	for t, d := range p.Beliefs {
		for f := 0; f < d.NumFacts(); f++ {
			if p.frozen(t, f) {
				continue
			}
			all = append(all, scored{Candidate{t, f}, d.FactEntropy(f)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		//hclint:ignore float-eq exact != in a comparator tie-break keeps the sort a strict weak order; entropies are compared, never tested for closeness
		if all[i].h != all[j].h {
			return all[i].h > all[j].h
		}
		if all[i].c.Task != all[j].c.Task {
			return all[i].c.Task < all[j].c.Task
		}
		return all[i].c.Fact < all[j].c.Fact
	})
	if k > len(all) {
		k = len(all)
	}
	picks := make([]Candidate, 0, k)
	for _, s := range all[:k] {
		picks = append(picks, s.c)
	}
	sortCandidates(picks)
	return picks, nil
}

// sortCandidates orders picks by (Task, Fact). slices.SortFunc rather
// than sort.Slice: the latter builds a reflect-based swapper, one heap
// allocation per call on the selection hot path.
func sortCandidates(cs []Candidate) {
	slices.SortFunc(cs, func(a, b Candidate) int {
		if a.Task != b.Task {
			return a.Task - b.Task
		}
		return a.Fact - b.Fact
	})
}

// scanAll runs fn(t) for every task index, optionally across workers
// goroutines. The per-task closures write to disjoint slice slots, so no
// locking is needed beyond the error channel.
func scanAll(ctx context.Context, n, workers int, fn func(int) error) error {
	if workers <= 1 || n < 2 {
		for t := 0; t < n; t++ {
			if err := fn(t); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	tasks := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				if err := fn(t); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	for t := 0; t < n; t++ {
		if err := ctx.Err(); err != nil {
			break
		}
		select {
		case tasks <- t:
		case err := <-errs:
			close(tasks)
			wg.Wait()
			return err
		}
	}
	close(tasks)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	return ctx.Err()
}
