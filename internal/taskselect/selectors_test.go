package taskselect

import (
	"context"
	"testing"

	"hcrowd/internal/belief"
	"hcrowd/internal/rngutil"
)

func twoTaskProblem(t *testing.T) Problem {
	t.Helper()
	d1 := tableIDist(t)
	d2 := randomDist(t, 42, 3)
	return Problem{
		Beliefs: []*belief.Dist{d1, d2},
		Experts: experts(0.9, 0.95),
	}
}

func TestProblemValidate(t *testing.T) {
	p := twoTaskProblem(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Problem{}).Validate(); err == nil {
		t.Error("empty problem accepted")
	}
	if err := (Problem{Beliefs: []*belief.Dist{nil}, Experts: experts(0.9)}).Validate(); err == nil {
		t.Error("nil belief accepted")
	}
	if err := (Problem{Beliefs: p.Beliefs}).Validate(); err == nil {
		t.Error("no experts accepted")
	}
}

func TestProblemObjectiveDecomposes(t *testing.T) {
	p := twoTaskProblem(t)
	ctx := context.Background()
	// No picks: objective is the sum of prior entropies.
	h0, err := p.Objective(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Beliefs[0].Entropy() + p.Beliefs[1].Entropy()
	if !almostEqual(h0, want, 1e-12) {
		t.Errorf("objective(∅) = %v, want %v", h0, want)
	}
	// One pick in task 0: task 1 still contributes its full entropy.
	h1, err := p.Objective(ctx, []Candidate{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ce0, _ := CondEntropy(p.Beliefs[0], p.Experts, []int{1})
	if !almostEqual(h1, ce0+p.Beliefs[1].Entropy(), 1e-12) {
		t.Errorf("objective decomposition broken: %v", h1)
	}
}

func TestGreedySelectsRequestedCount(t *testing.T) {
	p := twoTaskProblem(t)
	for k := 1; k <= 4; k++ {
		picks, err := Greedy{}.Select(context.Background(), p, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(picks) != k {
			t.Errorf("k=%d: got %d picks", k, len(picks))
		}
		seen := map[Candidate]bool{}
		for _, c := range picks {
			if seen[c] {
				t.Errorf("duplicate pick %v", c)
			}
			seen[c] = true
		}
	}
}

func TestGreedyMatchesExactForK1(t *testing.T) {
	// With k=1 the greedy choice is exactly the optimum (the paper:
	// "if k equals 1 ... there is no difference between OPT and Approx").
	for seed := int64(0); seed < 10; seed++ {
		p := Problem{
			Beliefs: []*belief.Dist{randomDist(t, 7000+seed, 3), randomDist(t, 7100+seed, 3)},
			Experts: experts(0.85, 0.95),
		}
		ctx := context.Background()
		g, err := Greedy{}.Select(ctx, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Exact{}.Select(ctx, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		hg, _ := p.Objective(ctx, g)
		he, _ := p.Objective(ctx, e)
		if !almostEqual(hg, he, 1e-9) {
			t.Errorf("seed %d: greedy %v (obj %v) != exact %v (obj %v)", seed, g, hg, e, he)
		}
	}
}

func TestGreedyWithinApproximationBound(t *testing.T) {
	// Total gain of greedy must be ≥ (1 − 1/e) × gain of OPT.
	const bound = 1 - 1/2.718281828459045
	ctx := context.Background()
	for seed := int64(0); seed < 8; seed++ {
		p := Problem{
			Beliefs: []*belief.Dist{randomDist(t, 8000+seed, 4)},
			Experts: experts(0.8, 0.92),
		}
		prior := p.Beliefs[0].Entropy()
		for _, k := range []int{2, 3} {
			g, err := Greedy{}.Select(ctx, p, k)
			if err != nil {
				t.Fatal(err)
			}
			e, err := Exact{}.Select(ctx, p, k)
			if err != nil {
				t.Fatal(err)
			}
			hg, _ := p.Objective(ctx, g)
			he, _ := p.Objective(ctx, e)
			gainG := prior - hg
			gainE := prior - he
			if gainG < bound*gainE-1e-9 {
				t.Errorf("seed %d k=%d: greedy gain %v < (1-1/e)·%v", seed, k, gainG, gainE)
			}
			if he > hg+1e-9 {
				t.Errorf("seed %d k=%d: OPT objective %v worse than greedy %v", seed, k, he, hg)
			}
		}
	}
}

func TestExactBeatsRandom(t *testing.T) {
	ctx := context.Background()
	rng := rngutil.New(99)
	better, worse := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		p := Problem{
			Beliefs: []*belief.Dist{randomDist(t, 9000+seed, 3), randomDist(t, 9100+seed, 3)},
			Experts: experts(0.9),
		}
		e, err := Exact{}.Select(ctx, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Random{Rng: rng}.Select(ctx, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		he, _ := p.Objective(ctx, e)
		hr, _ := p.Objective(ctx, r)
		if he <= hr+1e-12 {
			better++
		} else {
			worse++
		}
	}
	if worse > 0 {
		t.Errorf("OPT lost to Random on %d/10 instances", worse)
	}
}

func TestRandomSelectorProperties(t *testing.T) {
	p := twoTaskProblem(t)
	r := Random{Rng: rngutil.New(5)}
	picks, err := r.Select(context.Background(), p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 4 {
		t.Fatalf("got %d picks", len(picks))
	}
	seen := map[Candidate]bool{}
	for _, c := range picks {
		if seen[c] {
			t.Errorf("duplicate pick %v", c)
		}
		seen[c] = true
		if c.Task < 0 || c.Task > 1 || c.Fact < 0 || c.Fact > 2 {
			t.Errorf("pick out of range: %v", c)
		}
	}
	// Requesting more than available truncates.
	picks, err = r.Select(context.Background(), p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != p.NumFacts() {
		t.Errorf("oversized k returned %d picks, want %d", len(picks), p.NumFacts())
	}
	if _, err := (Random{}).Select(context.Background(), p, 1); err == nil {
		t.Error("Random without Rng accepted")
	}
}

func TestMaxEntropySelector(t *testing.T) {
	// Marginals: task 0 (Table I) has f3 at exactly 0.5 (max entropy).
	p := Problem{
		Beliefs: []*belief.Dist{tableIDist(t)},
		Experts: experts(0.9),
	}
	picks, err := MaxEntropy{}.Select(context.Background(), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 1 || picks[0] != (Candidate{0, 2}) {
		t.Errorf("MaxEntropy picked %v, want {0 2} (P(f3)=0.5)", picks)
	}
}

func TestMaxEntropyEqualsGreedySingleExpertK1(t *testing.T) {
	// The paper notes the single-worker single-query case has the trivial
	// solution "select the query with the maximum entropy". With one
	// expert and k=1 greedy must agree with MaxEntropy.
	ctx := context.Background()
	for seed := int64(0); seed < 10; seed++ {
		p := Problem{
			Beliefs: []*belief.Dist{randomDist(t, 11000+seed, 3)},
			Experts: experts(0.9),
		}
		g, err := Greedy{}.Select(ctx, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := MaxEntropy{}.Select(ctx, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		hg, _ := p.Objective(ctx, g)
		hm, _ := p.Objective(ctx, m)
		if !almostEqual(hg, hm, 1e-9) {
			t.Errorf("seed %d: greedy %v vs maxent %v objectives differ: %v vs %v",
				seed, g, m, hg, hm)
		}
	}
}

func TestSelectZeroK(t *testing.T) {
	p := twoTaskProblem(t)
	ctx := context.Background()
	for _, s := range []Selector{Greedy{}, Exact{}, Random{Rng: rngutil.New(1)}, MaxEntropy{}} {
		picks, err := s.Select(ctx, p, 0)
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
		if len(picks) != 0 {
			t.Errorf("%s returned picks for k=0: %v", s.Name(), picks)
		}
	}
}

func TestSelectCancellation(t *testing.T) {
	p := Problem{
		Beliefs: []*belief.Dist{randomDist(t, 1, 8), randomDist(t, 2, 8)},
		Experts: experts(0.9, 0.95),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Greedy{}).Select(ctx, p, 3); err == nil {
		t.Error("greedy ignored cancellation")
	}
	if _, err := (Exact{}).Select(ctx, p, 3); err == nil {
		t.Error("exact ignored cancellation")
	}
}

func TestGreedyStopsWhenNoGain(t *testing.T) {
	// A certain belief (point mass) offers zero gain everywhere: greedy
	// must stop early per Algorithm 2 line 4.
	joint := make([]float64, 8)
	joint[5] = 1
	d, err := belief.FromJoint(joint)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Beliefs: []*belief.Dist{d}, Experts: experts(0.9)}
	picks, err := Greedy{}.Select(context.Background(), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 0 {
		t.Errorf("greedy selected %v from a certain belief", picks)
	}
}

func TestSelectorNames(t *testing.T) {
	names := map[string]Selector{
		"Approx":     Greedy{},
		"OPT":        Exact{},
		"Random":     Random{},
		"MaxEntropy": MaxEntropy{},
	}
	for want, s := range names {
		if got := s.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestGreedyParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 6; seed++ {
		beliefs := make([]*belief.Dist, 12)
		for i := range beliefs {
			beliefs[i] = randomDist(t, 30000+seed*100+int64(i), 4)
		}
		p := Problem{Beliefs: beliefs, Experts: experts(0.9, 0.95)}
		serial, err := Greedy{}.Select(ctx, p, 4)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Greedy{Workers: 4}.Select(ctx, p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial) != len(parallel) {
			t.Fatalf("seed %d: %v vs %v", seed, serial, parallel)
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("seed %d: pick %d differs: %v vs %v", seed, i, serial, parallel)
			}
		}
	}
}

func TestGreedyParallelCancellation(t *testing.T) {
	beliefs := make([]*belief.Dist, 20)
	for i := range beliefs {
		beliefs[i] = randomDist(t, 31000+int64(i), 6)
	}
	p := Problem{Beliefs: beliefs, Experts: experts(0.9, 0.95)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Greedy{Workers: 8}).Select(ctx, p, 3); err == nil {
		t.Error("parallel greedy ignored cancellation")
	}
}
