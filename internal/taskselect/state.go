package taskselect

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"context"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
)

// SelectionState is the incremental variant of the Greedy selector. It
// implements Selector with round-for-round identical picks (same values,
// same deterministic tie-break) but amortizes the work of Algorithm 2
// across the checking loop's rounds:
//
//   - The per-task round-start marginal gains gain^∅(f) = H(O_t) −
//     H(O_t|AS^{{f}}) are cached between Select calls and recomputed only
//     for tasks the caller has Invalidated (in the pipeline: the tasks
//     whose beliefs the previous round's answers updated). A steady-state
//     round with k picks therefore costs O(touched tasks), not O(N·m)
//     CondEntropy evaluations.
//   - The pick loop replaces a priority queue with a two-level argmax:
//     every task caches the first strict maximum of its gain row (fact
//     ascending), and each pick scans those per-task bests in task order
//     with a strict comparison — exactly the argmax order of Greedy's
//     full scan (gain descending, ties to the lowest task then fact), at
//     O(N) per pick with no heap maintenance and no allocation. A pick
//     only perturbs the gains of its own task (tasks are independent), so
//     only that task's row is re-evaluated — eagerly, on exactly Greedy's
//     recompute schedule, rather than CELF-style stale-until-popped:
//     pure laziness needs stale gains to upper-bound fresh ones, and
//     while submodularity guarantees that in exact arithmetic, rounding
//     can violate it by a few ulps, which in the exact-tie regimes of a
//     converged belief silently changes the argmax and breaks
//     pick-identity with Greedy. Eager refresh costs at most m−1 extra
//     evaluations per pick and keeps the identity provable; the (1−1/e)
//     guarantee carries over unchanged either way.
//   - The crowd-only pieces of CondEntropy (Hamming-distance likelihood
//     tables, Σ_cr h(Pr_cr), the asymmetric yes-probability table) are
//     computed once per crowd; projections and query-set lists are built
//     in pooled scratch, so a steady-state round allocates O(1).
//
// The caller owns cache coherence: after mutating a task's belief (or its
// Frozen mask) it must call Invalidate(task) before the next Select. The
// pipeline does this for every task that received answers. Select itself
// detects crowd or problem-shape changes and resets wholesale, so one
// state must only ever serve one logical run at a time.
//
// Workers > 1 re-scans invalidated tasks concurrently and fans the
// post-pick row refresh out across the same pool; every goroutine writes
// a disjoint slot of the row and the per-task best is reduced serially
// afterwards, so the parallel refill is deterministic and bit-identical
// to the serial one. SelectionState is not safe for concurrent Select
// calls.
type SelectionState struct {
	// Workers bounds the goroutines of the invalidation re-scan and the
	// post-pick row refresh; <= 1 means serial.
	Workers int

	// Crowd-derived memos, reset when the crowd signature changes.
	crowdSig  string
	ce        crowd.Crowd
	asym      bool
	hPerQuery float64      // symmetric: Σ_cr h(Pr_cr)
	pYes      [][2]float64 // asymmetric: P(yes | truth) per worker

	// tables[s] caches likelihoodTables(ce, s) per query-set size. The
	// mutex makes get-or-create safe from the parallel re-scan.
	tablesMu sync.Mutex
	tables   map[int][][]float64 //hclint:guardedby tablesMu

	tasks []*taskCache

	// dirtyList and touchedList are per-Select scratch (task indices),
	// kept on the state so steady-state rounds reuse their capacity.
	dirtyList   []int
	touchedList []int

	// pending holds a cache restored via RestoreCache until the next sync
	// adopts it (the crowd memos must be recomputed for the live crowd
	// before the per-task gains are trusted).
	pending *SelectionCache

	stats engineStats
}

// taskCache holds the belief-derived memos for one task.
type taskCache struct {
	dirty     bool
	entropy   float64   // H(O_t)
	gains     []float64 // round-start gain per fact; NaN marks frozen facts
	frozen    []bool    // the mask gains was computed under
	anyFrozen bool      // OR of frozen, the drift check's fast path
	// bestFact/bestGain cache the first strict maximum of gains in fact
	// order (the task's entry in the pick loop's argmax); bestFact == -1
	// when no live candidate remains.
	bestFact int
	bestGain float64

	// Pick-loop scratch, only meaningful while touched (reset at the
	// start of the next Select): sel holds this round's picks in this
	// task in pick order, chosen marks them, live holds the refreshed
	// marginal gains given sel with NaN on chosen and frozen facts, and
	// qs is the refill's fused projection buffer.
	touched      bool
	sel          []int
	chosen       []bool
	live         []float64
	qs           []float64
	liveBestFact int
	liveBestGain float64
}

// curBest returns the task's current argmax entry: the refreshed row if
// the task received a pick this round, the round-start row otherwise.
func (tc *taskCache) curBest() (int, float64) {
	if tc.touched {
		return tc.liveBestFact, tc.liveBestGain
	}
	return tc.bestFact, tc.bestGain
}

// resetRound clears the pick-loop scratch. chosen and live are left
// dirty; they are re-initialized when the task is next touched.
func (tc *taskCache) resetRound() {
	tc.touched = false
	tc.sel = tc.sel[:0]
}

// gainRowBest returns the first strict maximum of a gain row in fact
// order, skipping NaN (frozen or consumed) entries; (-1, -Inf) when the
// row has no live entry. Scanning facts ascending with a strict > is
// exactly how Greedy's argmax breaks ties, which is what makes the
// cached best usable in its place.
func gainRowBest(gains []float64) (int, float64) {
	bf, bg := -1, math.Inf(-1)
	for f, g := range gains {
		if math.IsNaN(g) {
			continue
		}
		if g > bg {
			bf, bg = f, g
		}
	}
	return bf, bg
}

// NewSelectionState returns an empty incremental selection engine; the
// first Select populates it for the problem it sees.
func NewSelectionState(workers int) *SelectionState {
	return &SelectionState{Workers: workers}
}

// Name implements Selector. The engine reports the same name as Greedy
// because it is the same algorithm — only the evaluation schedule differs.
func (s *SelectionState) Name() string { return "Approx" }

// Invalidate marks tasks whose beliefs (or frozen masks) changed since the
// last Select, forcing their cached gains to be recomputed. Out-of-range
// indices are ignored.
func (s *SelectionState) Invalidate(tasks ...int) {
	for _, t := range tasks {
		if t >= 0 && t < len(s.tasks) && s.tasks[t] != nil {
			s.tasks[t].dirty = true
		}
	}
}

// InvalidateAll drops every cached gain (keeping the crowd memos).
func (s *SelectionState) InvalidateAll() {
	for _, tc := range s.tasks {
		if tc != nil {
			tc.dirty = true
		}
	}
}

// Admit grows the task table to total tasks, appending cold cache slots
// for the newly admitted tasks while keeping every existing task's cached
// gains and the crowd memos — the next sync slab-fills only the new
// slots instead of resetting wholesale. A state that has not synced yet
// is left untouched: its first sync builds the table at the grown size
// anyway. total at or below the current size is a no-op.
func (s *SelectionState) Admit(total int) {
	if len(s.tasks) == 0 || total <= len(s.tasks) {
		return
	}
	s.tasks = append(s.tasks, make([]*taskCache, total-len(s.tasks))...)
}

// crowdSignature fingerprints the crowd for cache-reset detection.
func crowdSignature(ce crowd.Crowd) string {
	var sb strings.Builder
	for _, w := range ce {
		fmt.Fprintf(&sb, "%s\x00%v\x00%v\x00%v\x01", w.ID, w.Accuracy, w.TPR, w.TNR)
	}
	return sb.String()
}

// crowdEqual reports whether two crowds are identical worker for worker —
// the steady-state fast path of the crowd-change check, sparing the
// formatted signature rebuild on every call. Float fields compare by bit
// pattern, which is at least as strict as the signature string.
func crowdEqual(a, b crowd.Crowd) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID ||
			math.Float64bits(a[i].Accuracy) != math.Float64bits(b[i].Accuracy) ||
			math.Float64bits(a[i].TPR) != math.Float64bits(b[i].TPR) ||
			math.Float64bits(a[i].TNR) != math.Float64bits(b[i].TNR) {
			return false
		}
	}
	return true
}

// sync aligns the cache with the problem: a crowd or shape change resets
// everything, and a frozen-mask drift on a clean task dirties it.
func (s *SelectionState) sync(p Problem) {
	if !crowdEqual(s.ce, p.Experts) || len(p.Beliefs) != len(s.tasks) {
		s.crowdSig = crowdSignature(p.Experts)
		// Copy the crowd so a caller mutating its slice in place is still
		// caught by the equality check on the next call.
		s.ce = append(crowd.Crowd(nil), p.Experts...)
		s.asym = false
		for _, w := range p.Experts {
			if w.Asymmetric() {
				s.asym = true
				break
			}
		}
		if s.asym {
			s.pYes = asymYesTable(p.Experts)
		} else {
			s.hPerQuery = symAnswerEntropy(p.Experts)
		}
		// sync runs serially before any parallel scan, but the reset
		// still takes tablesMu (uncontended) so the guardedby invariant
		// holds on every path rather than by phase-ordering argument.
		s.tablesMu.Lock()
		s.tables = make(map[int][][]float64)
		s.tablesMu.Unlock()
		s.tasks = make([]*taskCache, len(p.Beliefs))
		s.adoptPending(p)
	}
	s.pending = nil
	// Batch-allocate caches for tasks still missing one (all of them after
	// a reset, none in steady state) instead of one heap object per task.
	missing := 0
	for _, tc := range s.tasks {
		if tc == nil {
			missing++
		}
	}
	if missing > 0 {
		slab := make([]taskCache, missing)
		// Carve every new cache's per-fact slices out of two shared backing
		// arrays; a cold sync otherwise allocates four slices per task. The
		// three-index slicing caps each slice at its task's fact count, so
		// a later grow can never reach into a neighbour's segment.
		totalFacts := 0
		for t := range s.tasks {
			if s.tasks[t] == nil {
				totalFacts += p.Beliefs[t].NumFacts()
			}
		}
		fslab := make([]float64, 2*totalFacts)
		bslab := make([]bool, 2*totalFacts)
		i, off := 0, 0
		for t := range s.tasks {
			if s.tasks[t] == nil {
				m := p.Beliefs[t].NumFacts()
				tc := &slab[i]
				tc.dirty = true
				tc.gains = fslab[off : off+m : off+m]
				tc.live = fslab[off+m : off+2*m : off+2*m]
				tc.frozen = bslab[off : off+m : off+m]
				tc.chosen = bslab[off+m : off+2*m : off+2*m]
				s.tasks[t] = tc
				i++
				off += 2 * m
			}
		}
	}
	for t, tc := range s.tasks {
		if !tc.dirty && !frozenEqual(tc.frozen, tc.anyFrozen, p, t) {
			tc.dirty = true
		}
	}
}

// frozenEqual reports whether the cached frozen mask matches the
// problem's current mask for task t. anyFrozen is the cached mask's OR,
// letting the overwhelmingly common nothing-frozen-anywhere case skip the
// per-fact scan.
func frozenEqual(cached []bool, anyFrozen bool, p Problem, t int) bool {
	if !anyFrozen && (p.Frozen == nil || t >= len(p.Frozen) || p.Frozen[t] == nil) {
		return true
	}
	n := p.Beliefs[t].NumFacts()
	for f := 0; f < n; f++ {
		was := cached != nil && f < len(cached) && cached[f]
		if was != p.frozen(t, f) {
			return false
		}
	}
	return true
}

// likelihoodTablesFor returns the memoized Hamming-distance tables for
// query-set size sz, building them on first use.
func (s *SelectionState) likelihoodTablesFor(sz int) [][]float64 {
	s.tablesMu.Lock()
	defer s.tablesMu.Unlock()
	tbl, ok := s.tables[sz]
	if !ok {
		tbl = likelihoodTables(s.ce, sz)
		s.tables[sz] = tbl
	}
	return tbl
}

// condEntropy evaluates H(O_t | AS^facts) through the crowd memos, using
// sc for the projection. It matches CondEntropy bitwise: the cores run
// the identical arithmetic, only the setup comes from cache and scratch.
func (s *SelectionState) condEntropy(sc *evalScratch, tc *taskCache, d *belief.Dist, facts []int) (float64, error) {
	if len(facts) == 0 {
		return tc.entropy, nil
	}
	sz, w := len(facts), len(s.ce)
	if sz*w > maxFamilyBits {
		return 0, fmt.Errorf("%w: |T|=%d × |CE|=%d", ErrTooLarge, sz, w)
	}
	s.stats.evals.Add(1)
	sc.q = projectionInto(sc.q, d, facts)
	if s.asym {
		return condEntropyAsymCore(tc.entropy, sc.q, s.pYes, sz, w), nil
	}
	return condEntropySymCore(tc.entropy, sc.q, s.likelihoodTablesFor(sz), s.hPerQuery, sz, w), nil
}

// rescan rebuilds the round-start gain cache of task t. The round-start
// gains all condition on one-fact query sets, so the per-fact projections
// are fused into a single observation pass that fills every fact's
// two-pattern marginal; each addition happens in the order the per-fact
// projection would perform it, so the gains are bitwise the ones the
// one-at-a-time evaluation produces.
func (s *SelectionState) rescan(ctx context.Context, p Problem, t int) error {
	tc := s.tasks[t]
	d := p.Beliefs[t]
	sc := getScratch()
	defer putScratch(sc)
	tc.entropy = d.Entropy()
	m, w := d.NumFacts(), len(s.ce)
	if w > maxFamilyBits {
		return fmt.Errorf("%w: |T|=1 × |CE|=%d", ErrTooLarge, w)
	}
	tc.gains = growFloats(tc.gains, m)
	tc.frozen = growBools(tc.frozen, m)
	tc.anyFrozen = false
	qs := growFloats(sc.q, 2*m)
	for i := range qs {
		qs[i] = 0
	}
	for o := 0; o < d.NumObservations(); o++ {
		po := d.P(o)
		if po == 0 {
			continue
		}
		for f := 0; f < m; f++ {
			idx := 2 * f
			if belief.Models(o, f) {
				idx++
			}
			qs[idx] += po
		}
	}
	sc.q = qs
	var tables [][]float64
	if !s.asym {
		tables = s.likelihoodTablesFor(1)
	}
	for f := 0; f < m; f++ {
		tc.frozen[f] = p.frozen(t, f)
		if tc.frozen[f] {
			tc.anyFrozen = true
			tc.gains[f] = math.NaN()
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		s.stats.evals.Add(1)
		q := qs[2*f : 2*f+2]
		var h float64
		if s.asym {
			h = condEntropyAsymCore(tc.entropy, q, s.pYes, 1, w)
		} else {
			h = condEntropySymCore(tc.entropy, q, tables, s.hPerQuery, 1, w)
		}
		tc.gains[f] = tc.entropy - h
	}
	tc.bestFact, tc.bestGain = gainRowBest(tc.gains)
	tc.dirty = false
	return nil
}

// refill re-evaluates task tc's unchosen candidates against the enlarged
// selection (conditional entropy nh) — exactly Greedy's recompute
// schedule after a pick — and refreshes the task's cached argmax. Every
// candidate's query set is sel plus one fact, so the projections are
// fused into a single observation pass (the selection's pattern bits are
// shared; only the candidate's top bit differs), with each addition in
// the order the per-candidate projection would perform it — the gains
// are bitwise the ones Greedy's one-at-a-time evaluation produces.
// Workers > 1 fans the core evaluations out after the serial projection
// pass; each goroutine writes only its fact's slot and the argmax
// reduction runs serially afterwards, so the result is identical to the
// serial sweep.
func (s *SelectionState) refill(ctx context.Context, tc *taskCache, d *belief.Dist, nh float64) error {
	m, w := d.NumFacts(), len(s.ce)
	sz := len(tc.sel) + 1
	if sz*w > maxFamilyBits {
		return fmt.Errorf("%w: |T|=%d × |CE|=%d", ErrTooLarge, sz, w)
	}
	var tables [][]float64
	if !s.asym {
		tables = s.likelihoodTablesFor(sz)
	}
	n := 1 << uint(sz)
	tc.qs = growFloats(tc.qs, m*n)
	qs := tc.qs
	for i := range qs {
		qs[i] = 0
	}
	hiBit := uint(sz - 1) // the candidate fact is the query list's last entry
	for o := 0; o < d.NumObservations(); o++ {
		po := d.P(o)
		if po == 0 {
			continue
		}
		pb := 0
		for j, fs := range tc.sel {
			if belief.Models(o, fs) {
				pb |= 1 << uint(j)
			}
		}
		for f := 0; f < m; f++ {
			if tc.chosen[f] || tc.frozen[f] {
				continue
			}
			idx := pb
			if belief.Models(o, f) {
				idx |= 1 << hiBit
			}
			qs[f*n+idx] += po
		}
	}
	err := scanAll(ctx, m, s.Workers, func(f int) error {
		if tc.chosen[f] || tc.frozen[f] {
			tc.live[f] = math.NaN()
			return nil
		}
		s.stats.evals.Add(1)
		q := qs[f*n : (f+1)*n]
		var th float64
		if s.asym {
			th = condEntropyAsymCore(tc.entropy, q, s.pYes, sz, w)
		} else {
			th = condEntropySymCore(tc.entropy, q, tables, s.hPerQuery, sz, w)
		}
		tc.live[f] = nh - th
		return nil
	})
	if err != nil {
		return err
	}
	tc.liveBestFact, tc.liveBestGain = gainRowBest(tc.live)
	return nil
}

// Select implements Selector. See the type comment for the contract; the
// picks are identical to Greedy.Select on the same problem.
func (s *SelectionState) Select(ctx context.Context, p Problem, k int) ([]Candidate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	// Clear the previous round's pick-loop scratch up front (not at the
	// end: an error-path abort must not leak touched rows into the next
	// call) and before sync, which may swap the task table wholesale.
	for _, t := range s.touchedList {
		if t < len(s.tasks) && s.tasks[t] != nil {
			s.tasks[t].resetRound()
		}
	}
	s.touchedList = s.touchedList[:0]
	s.sync(p)
	s.stats.selects.Add(1)

	// Parallel invalidation re-scan: only dirty tasks pay the O(m)
	// CondEntropy sweep.
	s.dirtyList = s.dirtyList[:0]
	for t, tc := range s.tasks {
		if tc.dirty {
			s.dirtyList = append(s.dirtyList, t)
		}
	}
	s.stats.rescans.Add(int64(len(s.dirtyList)))
	s.stats.reused.Add(int64(len(s.tasks) - len(s.dirtyList)))
	if len(s.dirtyList) > 0 {
		// Pre-warm the size-1 table so the workers only read shared state.
		if !s.asym {
			s.likelihoodTablesFor(1)
		}
		err := scanAll(ctx, len(s.dirtyList), s.Workers, func(i int) error {
			return s.rescan(ctx, p, s.dirtyList[i])
		})
		if err != nil {
			return nil, err
		}
	}

	sc := getScratch()
	defer putScratch(sc)
	var picks []Candidate
	for len(picks) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Two-level argmax: per-task cached bests, scanned in task order
		// with a strict > — Greedy's exact tie-break order.
		bt, bf := -1, -1
		bg := math.Inf(-1)
		for t, tc := range s.tasks {
			f, g := tc.curBest()
			if f >= 0 && g > bg {
				bt, bf, bg = t, f, g
			}
		}
		if bt < 0 || bg <= gainEps {
			// Algorithm 2 line 4: no candidate improves the objective.
			break
		}
		tc, d := s.tasks[bt], p.Beliefs[bt]
		if !tc.touched {
			tc.touched = true
			s.touchedList = append(s.touchedList, bt)
			m := d.NumFacts()
			tc.chosen = growBools(tc.chosen, m)
			for f := range tc.chosen {
				tc.chosen[f] = false
			}
			tc.live = growFloats(tc.live, m)
		}
		picks = append(picks, Candidate{Task: bt, Fact: bf})
		tc.sel = append(tc.sel, bf)
		tc.chosen[bf] = true
		if len(picks) == k {
			// The round is complete: no further argmax reads the refreshed
			// row (the next Select rescans or starts from round-start gains),
			// so the final — and most expensive — refresh is skipped.
			break
		}
		// The enlarged selection's conditional entropy becomes the new gain
		// baseline for task bt; its remaining candidates re-evaluate against
		// it on exactly Greedy's recompute schedule.
		nh, err := s.condEntropy(sc, tc, d, tc.sel)
		if err != nil {
			return nil, err
		}
		if err := s.refill(ctx, tc, d, nh); err != nil {
			return nil, err
		}
	}
	sortCandidates(picks)
	return picks, nil
}
