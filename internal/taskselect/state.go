package taskselect

import (
	"container/heap"
	"fmt"
	"math"
	"strings"
	"sync"

	"context"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
)

// SelectionState is the incremental variant of the Greedy selector. It
// implements Selector with round-for-round identical picks (same values,
// same deterministic tie-break) but amortizes the work of Algorithm 2
// across the checking loop's rounds:
//
//   - The per-task round-start marginal gains gain^∅(f) = H(O_t) −
//     H(O_t|AS^{{f}}) are cached between Select calls and recomputed only
//     for tasks the caller has Invalidated (in the pipeline: the tasks
//     whose beliefs the previous round's answers updated). A steady-state
//     round with k picks therefore costs O(touched tasks), not O(N·m)
//     CondEntropy evaluations.
//   - The pick loop orders candidates through a lazy-deletion max-heap in
//     the CELF style. A pick only perturbs the gains of its own task
//     (tasks are independent), so those candidates are re-evaluated and
//     re-pushed with a bumped version; superseded entries are discarded
//     when they surface. The re-evaluation is eager — exactly Greedy's
//     recompute schedule — rather than CELF's stale-until-popped variant:
//     pure laziness needs stale gains to upper-bound fresh ones, and
//     while submodularity guarantees that in exact arithmetic, rounding
//     can violate it by a few ulps, which in the exact-tie regimes of a
//     converged belief (dozens of candidates whose gains differ only in
//     the last bits) silently changes the argmax and breaks pick-identity
//     with Greedy. Eager refresh costs at most m−1 extra evaluations per
//     pick and keeps the identity provable; the (1−1/e) guarantee carries
//     over unchanged either way.
//   - The crowd-only pieces of CondEntropy (Hamming-distance likelihood
//     tables, Σ_cr h(Pr_cr), the asymmetric yes-probability table) are
//     computed once per crowd, and the belief-dependent projection q is
//     memoized per task until the task is invalidated.
//
// The caller owns cache coherence: after mutating a task's belief (or its
// Frozen mask) it must call Invalidate(task) before the next Select. The
// pipeline does this for every task that received answers. Select itself
// detects crowd or problem-shape changes and resets wholesale, so one
// state must only ever serve one logical run at a time.
//
// Workers > 1 re-scans invalidated tasks concurrently (the same
// parallelism Greedy applies to its full scan). SelectionState is not safe
// for concurrent Select calls.
type SelectionState struct {
	// Workers bounds the goroutines of the invalidation re-scan; <= 1
	// means serial.
	Workers int

	// Crowd-derived memos, reset when the crowd signature changes.
	crowdSig  string
	ce        crowd.Crowd
	asym      bool
	hPerQuery float64      // symmetric: Σ_cr h(Pr_cr)
	pYes      [][2]float64 // asymmetric: P(yes | truth) per worker

	// tables[s] caches likelihoodTables(ce, s) per query-set size. The
	// mutex makes get-or-create safe from the parallel re-scan.
	tablesMu sync.Mutex
	tables   map[int][][]float64

	tasks []*taskCache

	// pending holds a cache restored via RestoreCache until the next sync
	// adopts it (the crowd memos must be recomputed for the live crowd
	// before the per-task gains are trusted).
	pending *SelectionCache

	stats engineStats
}

// taskCache holds the belief-derived memos for one task.
type taskCache struct {
	dirty   bool
	entropy float64   // H(O_t)
	gains   []float64 // round-start gain per fact; NaN marks frozen facts
	frozen  []bool    // the mask gains was computed under
	proj    map[string][]float64
}

// NewSelectionState returns an empty incremental selection engine; the
// first Select populates it for the problem it sees.
func NewSelectionState(workers int) *SelectionState {
	return &SelectionState{Workers: workers}
}

// Name implements Selector. The engine reports the same name as Greedy
// because it is the same algorithm — only the evaluation schedule differs.
func (s *SelectionState) Name() string { return "Approx" }

// Invalidate marks tasks whose beliefs (or frozen masks) changed since the
// last Select, forcing their cached gains to be recomputed. Out-of-range
// indices are ignored.
func (s *SelectionState) Invalidate(tasks ...int) {
	for _, t := range tasks {
		if t >= 0 && t < len(s.tasks) && s.tasks[t] != nil {
			s.tasks[t].dirty = true
		}
	}
}

// InvalidateAll drops every cached gain (keeping the crowd memos).
func (s *SelectionState) InvalidateAll() {
	for _, tc := range s.tasks {
		if tc != nil {
			tc.dirty = true
		}
	}
}

// crowdSignature fingerprints the crowd for cache-reset detection.
func crowdSignature(ce crowd.Crowd) string {
	var sb strings.Builder
	for _, w := range ce {
		fmt.Fprintf(&sb, "%s\x00%v\x00%v\x00%v\x01", w.ID, w.Accuracy, w.TPR, w.TNR)
	}
	return sb.String()
}

// sync aligns the cache with the problem: a crowd or shape change resets
// everything, and a frozen-mask drift on a clean task dirties it.
func (s *SelectionState) sync(p Problem) {
	sig := crowdSignature(p.Experts)
	if sig != s.crowdSig || len(p.Beliefs) != len(s.tasks) {
		s.crowdSig = sig
		s.ce = p.Experts
		s.asym = false
		for _, w := range p.Experts {
			if w.Asymmetric() {
				s.asym = true
				break
			}
		}
		if s.asym {
			s.pYes = asymYesTable(p.Experts)
		} else {
			s.hPerQuery = symAnswerEntropy(p.Experts)
		}
		s.tables = make(map[int][][]float64)
		s.tasks = make([]*taskCache, len(p.Beliefs))
		s.adoptPending(p)
	}
	s.pending = nil
	for t := range s.tasks {
		if s.tasks[t] == nil {
			s.tasks[t] = &taskCache{dirty: true}
			continue
		}
		tc := s.tasks[t]
		if !tc.dirty && !frozenEqual(tc.frozen, p, t) {
			tc.dirty = true
		}
	}
}

// frozenEqual reports whether the cached frozen mask matches the
// problem's current mask for task t.
func frozenEqual(cached []bool, p Problem, t int) bool {
	n := p.Beliefs[t].NumFacts()
	for f := 0; f < n; f++ {
		was := cached != nil && f < len(cached) && cached[f]
		if was != p.frozen(t, f) {
			return false
		}
	}
	return true
}

// likelihoodTablesFor returns the memoized Hamming-distance tables for
// query-set size sz, building them on first use.
func (s *SelectionState) likelihoodTablesFor(sz int) [][]float64 {
	s.tablesMu.Lock()
	defer s.tablesMu.Unlock()
	tbl, ok := s.tables[sz]
	if !ok {
		tbl = likelihoodTables(s.ce, sz)
		s.tables[sz] = tbl
	}
	return tbl
}

// projectionFor returns the memoized projection of task tc's belief onto
// the ordered fact list.
func (tc *taskCache) projectionFor(d *belief.Dist, facts []int) []float64 {
	return memoProjection(tc.proj, d, facts)
}

// memoProjection is the shared get-or-compute for per-task projection
// memos (SelectionState and AssignState key them identically).
func memoProjection(proj map[string][]float64, d *belief.Dist, facts []int) []float64 {
	key := make([]byte, len(facts))
	for i, f := range facts {
		key[i] = byte(f)
	}
	k := string(key)
	if q, ok := proj[k]; ok {
		return q
	}
	q := projection(d, facts)
	proj[k] = q
	return q
}

// condEntropy evaluates H(O_t | AS^facts) through the memos. It matches
// CondEntropy bitwise: the cores run the identical arithmetic, only the
// setup (projection, tables) comes from cache.
func (s *SelectionState) condEntropy(tc *taskCache, d *belief.Dist, facts []int) (float64, error) {
	if len(facts) == 0 {
		return tc.entropy, nil
	}
	sz, w := len(facts), len(s.ce)
	if sz*w > maxFamilyBits {
		return 0, fmt.Errorf("%w: |T|=%d × |CE|=%d", ErrTooLarge, sz, w)
	}
	s.stats.evals.Add(1)
	q := tc.projectionFor(d, facts)
	if s.asym {
		return condEntropyAsymCore(tc.entropy, q, s.pYes, sz, w), nil
	}
	return condEntropySymCore(tc.entropy, q, s.likelihoodTablesFor(sz), s.hPerQuery, sz, w), nil
}

// rescan rebuilds the round-start gain cache of task t.
func (s *SelectionState) rescan(ctx context.Context, p Problem, t int) error {
	tc := s.tasks[t]
	d := p.Beliefs[t]
	tc.entropy = d.Entropy()
	tc.proj = make(map[string][]float64)
	tc.gains = tc.gains[:0]
	if cap(tc.gains) < d.NumFacts() {
		tc.gains = make([]float64, 0, d.NumFacts())
	}
	tc.frozen = make([]bool, d.NumFacts())
	for f := 0; f < d.NumFacts(); f++ {
		tc.frozen[f] = p.frozen(t, f)
		if tc.frozen[f] {
			tc.gains = append(tc.gains, math.NaN())
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		h, err := s.condEntropy(tc, d, []int{f})
		if err != nil {
			return err
		}
		tc.gains = append(tc.gains, tc.entropy-h)
	}
	tc.dirty = false
	return nil
}

// heapEntry is one candidate in the pick-ordering max-heap. version
// stamps the number of picks its task had when gain was computed; a
// mismatch means the entry was superseded by the eager refresh after a
// pick in its task and is discarded when it surfaces (lazy deletion).
type heapEntry struct {
	task, fact int
	gain       float64
	version    int
}

// candHeap orders entries by gain descending, ties broken by ascending
// (task, fact) — exactly the argmax order of Greedy's full scan, which is
// what makes the two selectors' picks identical.
type candHeap []heapEntry

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	//hclint:ignore float-eq exact != is the point: the heap must reproduce Greedy's argmax scan bit-for-bit, and a tolerance would break comparator transitivity
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	if h[i].task != h[j].task {
		return h[i].task < h[j].task
	}
	return h[i].fact < h[j].fact
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(heapEntry)) }
func (h *candHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Select implements Selector. See the type comment for the contract; the
// picks are identical to Greedy.Select on the same problem.
func (s *SelectionState) Select(ctx context.Context, p Problem, k int) ([]Candidate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	s.sync(p)
	s.stats.selects.Add(1)

	// Parallel invalidation re-scan: only dirty tasks pay the O(m)
	// CondEntropy sweep.
	var dirty []int
	for t, tc := range s.tasks {
		if tc.dirty {
			dirty = append(dirty, t)
		}
	}
	s.stats.rescans.Add(int64(len(dirty)))
	s.stats.reused.Add(int64(len(s.tasks) - len(dirty)))
	if len(dirty) > 0 {
		// Pre-warm the size-1 table so the workers only read shared state.
		if !s.asym {
			s.likelihoodTablesFor(1)
		}
		err := scanAll(ctx, len(dirty), s.Workers, func(i int) error {
			return s.rescan(ctx, p, dirty[i])
		})
		if err != nil {
			return nil, err
		}
	}

	// Seed the CELF heap with every candidate's cached round-start gain.
	h := make(candHeap, 0, len(s.tasks)*4)
	for t, tc := range s.tasks {
		for f, g := range tc.gains {
			if math.IsNaN(g) {
				continue
			}
			h = append(h, heapEntry{task: t, fact: f, gain: g})
		}
	}
	heap.Init(&h)

	selected := make(map[int][]int)
	versions := make(map[int]int)
	var picks []Candidate
	for len(picks) < k && h.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		top := h[0]
		t := top.task
		if top.version != versions[t] {
			// Superseded by the eager refresh after an earlier pick in this
			// task; its replacement is already queued. Discard.
			heap.Pop(&h)
			continue
		}
		if top.gain <= gainEps {
			// The heap max is current, so every live entry's gain is at most
			// this — Algorithm 2 line 4 fires for the whole pool.
			break
		}
		heap.Pop(&h)
		picks = append(picks, Candidate{Task: t, Fact: top.fact})
		selected[t] = append(selected[t], top.fact)
		versions[t]++
		// The enlarged selection's conditional entropy becomes the new gain
		// baseline for task t; the projection memo makes this a cache hit of
		// the winning candidate's own evaluation.
		tc, d := s.tasks[t], p.Beliefs[t]
		nh, err := s.condEntropy(tc, d, selected[t])
		if err != nil {
			return nil, err
		}
		// Eagerly re-evaluate task t's remaining candidates on exactly
		// Greedy's recompute schedule (see the type comment for why a lazy
		// CELF refresh is unsafe here) and supersede their heap entries.
		chosen := 0
		for _, f := range selected[t] {
			chosen |= 1 << uint(f)
		}
		for f := 0; f < d.NumFacts(); f++ {
			if chosen&(1<<uint(f)) != 0 || tc.frozen[f] {
				continue
			}
			th, err := s.condEntropy(tc, d, append(append([]int{}, selected[t]...), f))
			if err != nil {
				return nil, err
			}
			heap.Push(&h, heapEntry{task: t, fact: f, gain: nh - th, version: versions[t]})
		}
	}
	sortCandidates(picks)
	return picks, nil
}
