package taskselect

import (
	"context"
	"fmt"
	"testing"

	"hcrowd/internal/belief"
	"hcrowd/internal/crowd"
	"hcrowd/internal/rngutil"
)

// randomProblem builds a multi-task problem with varied widths.
func randomProblem(t *testing.T, seed int64, tasks int, ce crowd.Crowd) Problem {
	t.Helper()
	beliefs := make([]*belief.Dist, tasks)
	for i := range beliefs {
		m := 2 + int(seed+int64(i))%3 // widths 2..4
		beliefs[i] = randomDist(t, seed*100+int64(i), m)
	}
	return Problem{Beliefs: beliefs, Experts: ce}
}

// samePicks fails the test unless the two selectors returned identical
// candidate sets.
func samePicks(t *testing.T, label string, got, want []Candidate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: incremental picked %v, greedy picked %v", label, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pick %d differs: incremental %v, greedy %v", label, i, got, want)
		}
	}
}

func TestSelectionStateMatchesGreedySingleShot(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 6; seed++ {
		for _, k := range []int{1, 2, 4, 7} {
			p := randomProblem(t, seed, 4, experts(0.8, 0.93))
			want, err := (Greedy{}).Select(ctx, p, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := NewSelectionState(0).Select(ctx, p, k)
			if err != nil {
				t.Fatal(err)
			}
			samePicks(t, fmt.Sprintf("seed=%d k=%d", seed, k), got, want)
		}
	}
}

// TestSelectionStateMatchesGreedyAcrossRounds is the core equivalence
// property: driven like the pipeline drives it (select, update the picked
// tasks' beliefs, invalidate, repeat), the incremental engine must produce
// the same picks as a fresh full-scan Greedy every round.
func TestSelectionStateMatchesGreedyAcrossRounds(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name    string
		ce      crowd.Crowd
		workers int
		frozen  bool
	}{
		{"symmetric-serial", experts(0.85, 0.95), 0, false},
		{"symmetric-parallel", experts(0.85, 0.95), 4, false},
		{"asymmetric", crowd.Crowd{{ID: "A", TPR: 0.9, TNR: 0.8}, {ID: "B", TPR: 0.85, TNR: 0.95}}, 2, false},
		{"with-freezing", experts(0.85, 0.95), 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := randomProblem(t, 3, 5, tc.ce)
			if tc.frozen {
				p.Frozen = make([][]bool, len(p.Beliefs))
				for i, d := range p.Beliefs {
					p.Frozen[i] = make([]bool, d.NumFacts())
				}
			}
			state := NewSelectionState(tc.workers)
			rng := rngutil.New(77)
			for round := 0; round < 8; round++ {
				want, err := (Greedy{Workers: tc.workers}).Select(ctx, p, 3)
				if err != nil {
					t.Fatal(err)
				}
				got, err := state.Select(ctx, p, 3)
				if err != nil {
					t.Fatal(err)
				}
				samePicks(t, fmt.Sprintf("round %d", round), got, want)
				if len(got) == 0 {
					break
				}
				// Apply simulated expert answers to the picked tasks, as the
				// pipeline would, then invalidate exactly those tasks.
				byTask := make(map[int][]int)
				for _, c := range got {
					byTask[c.Task] = append(byTask[c.Task], c.Fact)
				}
				for task, facts := range byTask {
					truth := func(f int) bool { return (task+f)%2 == 0 }
					fam := crowd.SimulateAnswerFamily(rng, tc.ce, facts, truth)
					if err := p.Beliefs[task].Update(fam); err != nil {
						t.Fatal(err)
					}
					if tc.frozen && round >= 3 {
						// Freeze the first picked fact to exercise the
						// frozen-drift path alongside belief invalidation.
						p.Frozen[task][facts[0]] = true
					}
					state.Invalidate(task)
				}
			}
		})
	}
}

// TestSelectionStateSteadyStateEvals verifies the engine's reason to
// exist: after the first round, selection must cost far fewer
// conditional-entropy evaluations than the full rescan.
func TestSelectionStateSteadyStateEvals(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 5, 20, experts(0.85, 0.95))
	state := NewSelectionState(0)
	if _, err := state.Select(ctx, p, 1); err != nil {
		t.Fatal(err) // cold round pays the full scan
	}

	countRound := func(sel Selector) int64 {
		t.Helper()
		ResetEvalCount()
		picks, err := sel.Select(ctx, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(picks) != 1 {
			t.Fatalf("picked %v", picks)
		}
		return EvalCount()
	}
	full := countRound(Greedy{})
	// Steady state with one invalidated task.
	state.Invalidate(0)
	incr := countRound(state)
	if incr*2 > full {
		t.Errorf("steady-state round cost %d evals, full rescan %d — want >=2x fewer", incr, full)
	}
}

// TestSelectionStateCrowdChangeResets drives the tier-switch scenario: a
// new expert crowd must invalidate every crowd-derived memo.
func TestSelectionStateCrowdChangeResets(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 9, 4, experts(0.8, 0.9))
	state := NewSelectionState(0)
	if _, err := state.Select(ctx, p, 2); err != nil {
		t.Fatal(err)
	}
	p.Experts = experts(0.97)
	want, err := (Greedy{}).Select(ctx, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := state.Select(ctx, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	samePicks(t, "after crowd swap", got, want)
}

// TestSelectionStateFrozenDriftWithoutInvalidate checks the safety net:
// freezing a fact without an explicit Invalidate must still be noticed.
func TestSelectionStateFrozenDriftWithoutInvalidate(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 11, 3, experts(0.85, 0.95))
	state := NewSelectionState(0)
	first, err := state.Select(ctx, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 {
		t.Fatalf("picked %v", first)
	}
	// Freeze the winning fact; the engine must not pick it again.
	p.Frozen = make([][]bool, len(p.Beliefs))
	for i, d := range p.Beliefs {
		p.Frozen[i] = make([]bool, d.NumFacts())
	}
	p.Frozen[first[0].Task][first[0].Fact] = true
	want, err := (Greedy{}).Select(ctx, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := state.Select(ctx, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	samePicks(t, "after freeze", got, want)
	if got[0] == first[0] {
		t.Errorf("frozen fact %v re-picked", first[0])
	}
}
