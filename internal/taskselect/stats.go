package taskselect

import "sync/atomic"

// SelectStats is a point-in-time snapshot of one incremental engine's
// work counters. All fields are cumulative since the state was created;
// callers wanting per-round figures diff two snapshots. Unlike the
// package-global EvalCount, these attribute work to one state, so
// concurrent runs do not contaminate each other's numbers.
type SelectStats struct {
	// Selects counts Select / SelectAssign calls served.
	Selects int64
	// Evals counts CondEntropy-core evaluations run through this state —
	// the same unit the global EvalCount (and BENCH_core.json) measures.
	Evals int64
	// Rescans counts task caches rebuilt because the task was invalidated
	// or new (cache misses, in tasks).
	Rescans int64
	// Reused counts task caches served intact across a Select call (cache
	// hits, in tasks).
	Reused int64
}

// Sub returns s - prev field-wise — the work done between two snapshots.
func (s SelectStats) Sub(prev SelectStats) SelectStats {
	return SelectStats{
		Selects: s.Selects - prev.Selects,
		Evals:   s.Evals - prev.Evals,
		Rescans: s.Rescans - prev.Rescans,
		Reused:  s.Reused - prev.Reused,
	}
}

// engineStats is the atomic backing store shared by SelectionState and
// AssignState. Atomics, not a mutex: evals are bumped from the parallel
// invalidation re-scan.
type engineStats struct {
	selects atomic.Int64
	evals   atomic.Int64
	rescans atomic.Int64
	reused  atomic.Int64
}

func (e *engineStats) snapshot() SelectStats {
	return SelectStats{
		Selects: e.selects.Load(),
		Evals:   e.evals.Load(),
		Rescans: e.rescans.Load(),
		Reused:  e.reused.Load(),
	}
}

// Stats returns the engine's cumulative work counters. Safe to call
// concurrently with a running Select (the fields are read atomically,
// though a mid-call snapshot may catch a round half-counted).
func (s *SelectionState) Stats() SelectStats { return s.stats.snapshot() }

// Stats returns the engine's cumulative work counters; see
// SelectionState.Stats.
func (s *AssignState) Stats() SelectStats { return s.stats.snapshot() }
